"""Tests for the ``arest`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "arest" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRunAs:
    def test_esnet(self, capsys):
        assert main(["run-as", "46", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ESnet" in out
        assert "CO=" in out

    def test_no_evidence_as(self, capsys):
        assert main(
            ["run-as", "3", "--seed", "1", "--targets", "12", "--vps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "no SR-MPLS evidence" in out

    def test_dump(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main(
            [
                "run-as",
                "46",
                "--targets",
                "8",
                "--vps",
                "2",
                "--dump",
                str(path),
            ]
        ) == 0
        assert path.exists()
        from repro.campaign import TraceDataset

        dataset = TraceDataset.load_jsonl(path)
        assert len(dataset) == 16  # 8 targets x 2 VPs


class TestDetect:
    def test_offline_detection(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        main(
            ["run-as", "28", "--targets", "8", "--vps", "2",
             "--dump", str(path)]
        )
        capsys.readouterr()
        assert main(["detect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "distinct segments" in out
        assert "CO" in out

    def test_no_columnar_reference_path_identical(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        main(
            ["run-as", "28", "--targets", "8", "--vps", "2",
             "--dump", str(path)]
        )
        capsys.readouterr()
        assert main(["detect", str(path)]) == 0
        columnar_out = capsys.readouterr().out
        assert main(["detect", str(path), "--no-columnar"]) == 0
        assert capsys.readouterr().out == columnar_out

    def test_vendor_breakdown_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "traces.jsonl"
        main(
            ["run-as", "28", "--targets", "8", "--vps", "2",
             "--dump", str(path)]
        )
        capsys.readouterr()
        assert main(["detect", str(path), "--vendor-breakdown"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {
            "target_asn", "traces", "segment_occurrences",
            "distinct_segments", "vendors",
        }
        assert doc["traces"] == 16
        total = sum(
            entry["distinct_segments"] for entry in doc["vendors"].values()
        )
        assert total == doc["distinct_segments"]


class TestValidate:
    def test_table3(self, capsys):
        assert main(["validate", "46", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "precision=1.000" in out


class TestSurvey:
    def test_fig5(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Cisco" in out
        assert "SRGB: 70%" in out


class TestPortfolioTable:
    def test_table5(self, capsys):
        assert main(["portfolio-table"]) == 0
        out = capsys.readouterr().out
        assert "AS#46" in out and "ESnet" in out
        assert out.count("AS#") == 60


class TestErrorPaths:
    def test_detect_missing_file(self):
        with pytest.raises(FileNotFoundError):
            main(["detect", "/nonexistent/traces.jsonl"])

    def test_run_as_unknown_id(self):
        with pytest.raises(KeyError):
            main(["run-as", "99"])

    def test_validate_unknown_id(self):
        with pytest.raises(KeyError):
            main(["validate", "99"])


class TestTestbedCommand:
    def test_all_pass(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 5
        assert "all five flags isolated" in out


class TestDegradationCommand:
    ARGS = ["degradation", "--vps", "1", "--targets", "4", "--seed", "3"]

    def test_loss_sweep(self, capsys):
        assert main(self.ARGS + ["--loss-levels", "0,0.1"]) == 0
        out = capsys.readouterr().out
        assert "Degradation curves" in out
        assert "probe loss" in out
        assert "Loss" in out and "CVR R/P" in out
        assert "0%" in out and "10%" in out

    def test_corruption_sweep(self, capsys):
        assert main(self.ARGS + ["--corruption", "0,0.1"]) == 0
        out = capsys.readouterr().out
        assert "Degradation curves" in out
        assert "vs. corruption" in out
        assert "Corruption" in out and "Quarantined" in out
        assert "0%" in out and "10%" in out

    def test_corruption_sweep_with_stale_replay(self, capsys):
        assert main(
            self.ARGS + ["--corruption", "0.1", "--stale-replay", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "vs. corruption" in out


class TestPortfolioCommand:
    def test_small_portfolio_summary(self, capsys):
        assert main(
            ["portfolio", "--targets", "6", "--vps", "2", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out
        assert "confirmed ASes detected" in out


class TestLoggingOptions:
    def test_log_flags_are_accepted(self, capsys):
        assert main(
            [
                "--log-level",
                "debug",
                "--log-format",
                "json",
                "run-as",
                "46",
                "--targets",
                "4",
                "--vps",
                "1",
            ]
        ) == 0
        assert "ESnet" in capsys.readouterr().out

    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "chatty", "portfolio-table"])
        with pytest.raises(SystemExit):
            main(["--log-format", "xml", "portfolio-table"])


class TestTelemetryCommand:
    def _collect(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        assert main(
            [
                "run-as",
                "46",
                "--targets",
                "4",
                "--vps",
                "1",
                "--telemetry-dir",
                str(telemetry_dir),
            ]
        ) == 0
        return telemetry_dir

    def test_text_report(self, tmp_path, capsys):
        telemetry_dir = self._collect(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "exit=ok" in out
        assert "Per-stage wall-clock seconds" in out
        assert "Per-AS counters" in out
        assert "AS#46" in out

    def test_prometheus_output(self, tmp_path, capsys):
        telemetry_dir = self._collect(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", str(telemetry_dir), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "arest_run_info{" in out
        assert 'exit_status="ok"' in out

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["telemetry", str(tmp_path / "nowhere")]) == 1
        assert "no telemetry found" in capsys.readouterr().err

    def test_json_report(self, tmp_path, capsys):
        import json

        telemetry_dir = self._collect(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", str(telemetry_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["manifest"]["exit_status"] == "ok"
        assert "stages" in report
        assert "46" in report["counters"]


class TestTimelineCommand:
    def _collect(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        assert main(
            [
                "run-as",
                "46",
                "--targets",
                "4",
                "--vps",
                "1",
                "--telemetry-dir",
                str(telemetry_dir),
            ]
        ) == 0
        return telemetry_dir

    def test_text_timeline(self, tmp_path, capsys):
        telemetry_dir = self._collect(tmp_path)
        capsys.readouterr()
        assert main(["timeline", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace" in out
        assert "Critical path" in out

    def test_json_timeline(self, tmp_path, capsys):
        import json

        telemetry_dir = self._collect(tmp_path)
        capsys.readouterr()
        assert main(["timeline", str(telemetry_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["trace_id"]
        assert report["spans"] > 0
        assert 0.0 < report["critical_path_share"] <= 1.0

    def test_trace_json_artifact(self, tmp_path, capsys):
        import json

        telemetry_dir = self._collect(tmp_path)
        artifact = tmp_path / "trace-events.json"
        capsys.readouterr()
        assert main(
            ["timeline", str(telemetry_dir), "--trace-json", str(artifact)]
        ) == 0
        assert "trace events written" in capsys.readouterr().out
        doc = json.loads(artifact.read_text())
        assert doc["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["timeline", str(tmp_path / "nowhere")]) == 1
        assert "no traced spans" in capsys.readouterr().err
