"""TNT: Trace the Naughty Tunnels (Vanaubel/Luttringer et al.).

TNT extends Paris traceroute with (i) MPLS-aware annotation of the
collected hops and (ii) active *revelation* of tunnels hidden from plain
traceroute.  The real tool fires extra probes (DPR, BRPR, buddy bits);
here revelation is modelled as a per-tunnel success draw against the
simulator's ground truth, preserving TNT's observable contract: hidden
hops, when revealed, surface **addresses only, never LSEs** (Sec. 2.2 of
the paper -- "TNT is able to reveal the content of invisible tunnels but
without the LSE").

The prober also carries the per-hop ground-truth annotations
(``truth_asn``, ``truth_planes``) from the forwarding engine onto the
trace records, which the evaluation harness uses for scoring.
"""

from __future__ import annotations

from dataclasses import replace
from hashlib import sha256

from repro.netsim.forwarding import ForwardingEngine, ReplyKind, TruthHop
from repro.netsim.addressing import IPv4Address
from repro.netsim.walkcache import RECORD_TTL, RecordedWalk
from repro.probing.records import Trace, TraceHop
from repro.probing.traceroute import (
    _HOP_LATENCY_MS,
    _MAX_CONSECUTIVE_STARS,
    ParisTraceroute,
    derive_flow_id,
    quote_records,
)
from repro.util.determinism import unit_hash
from repro.util.retry import RetryAccounting, RetryPolicy


class TntProber:
    """Paris traceroute + tunnel revelation + ground-truth annotation."""

    def __init__(
        self,
        engine: ForwardingEngine,
        max_ttl: int = 40,
        reveal_success_rate: float = 0.85,
        seed: int = 0,
        retry: RetryPolicy | None = None,
        fast_path: bool = True,
    ) -> None:
        if not 0.0 <= reveal_success_rate <= 1.0:
            raise ValueError("reveal_success_rate must be within [0, 1]")
        self._engine = engine
        self._retry = retry or RetryPolicy.none()
        self._traceroute = ParisTraceroute(
            engine,
            max_ttl=max_ttl,
            seed=seed,
            retry=self._retry,
            fast_path=fast_path,
        )
        self._reveal_rate = reveal_success_rate
        self._seed = seed

    @property
    def accounting(self) -> RetryAccounting:
        """Retry accounting of the underlying traceroute client."""
        return self._traceroute.accounting

    def trace(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        vp_name: str = "",
    ) -> Trace:
        """Run one TNT traceroute: probe, annotate, reveal."""
        prober = self._traceroute
        walk: RecordedWalk | None = None
        if (
            prober.fast_path
            and self._engine.faults is None
            and self._engine.dynamics is None
            and not self._retry.enabled
        ):
            flow_id = derive_flow_id(vp_router_id, destination)
            walk = self._engine.record_walk(
                vp_router_id, destination, flow_id
            )
            if (
                walk.ok
                and len(walk.expiry_by_ttl) + _MAX_CONSECUTIVE_STARS
                <= RECORD_TTL
            ):
                return self._fused_trace(
                    vp_router_id, destination, vp_name, flow_id, walk
                )
        trace, walk = prober.trace_recorded(
            vp_router_id, destination, vp_name, prerecorded=walk
        )
        if (
            walk is not None
            and walk.ok
            and walk.epoch == self._engine.epoch
        ):
            # The recording already walked the full path with an
            # effectively infinite TTL; its truth equals truth_walk's.
            # A stale recording (the topology churned mid-trace) is
            # never trusted -- truth is re-walked live instead.
            truth = walk.truth
        else:
            truth = self._engine.truth_walk(
                vp_router_id, destination, trace.flow_id
            )
        trace = self._annotate_truth(trace, truth)
        trace = self._reveal_hidden(trace, truth)
        return trace

    def _fused_trace(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        vp_name: str,
        flow_id: int,
        walk: RecordedWalk,
    ) -> Trace:
        """Synthesize the fully annotated trace in one pass.

        Bit-equivalent to ``trace_recorded`` + ``_annotate_truth`` over a
        pristine data plane (no faults, no retries): probe outcomes come
        from the recorded walk exactly as ``forward_probe_cached`` would
        synthesize them, and each :class:`TraceHop` is constructed once,
        truth annotations included, instead of probe-reply -> bare hop ->
        annotated copy.  Revelation runs unchanged on top.
        """
        prober = self._traceroute
        truth = walk.truth
        by_router: dict[int, list[TruthHop]] = {}
        for t in truth:
            by_router.setdefault(t.router_id, []).append(t)
        # jitter keys never repeat within a trace, so hash the prebuilt
        # key text directly: the memoized unit_hash pays more building
        # its key string than the raw SHA-256 costs (bit-identical)
        jitter_prefix = f"{prober.seed}\x1frtt\x1f{flow_id}\x1f"
        events_get = walk.expiry_by_ttl.get
        candidates_for = by_router.get
        match = self._match_candidates
        # hot-loop locals; TraceHop built positionally, field order as in
        # records.py: (probe_ttl, address, rtt_ms, reply_ip_ttl, lses,
        # tnt_revealed, destination_reply, truth_router_id, truth_asn,
        # truth_planes, truth_uniform)
        hop = TraceHop
        digest64 = sha256
        from_bytes = int.from_bytes
        hops: list[TraceHop] = []
        append = hops.append
        reached = False
        stars = 0
        probes = 0
        for ttl in range(1, prober.max_ttl + 1):
            probes += 1
            event = events_get(ttl)
            terminal = None
            if event is None:
                terminal = walk.terminal_reply
                if terminal is None:
                    # the walk died silently past its last checkpoint
                    append(hop(ttl, None))
                    stars += 1
                    if stars >= _MAX_CONSECUTIVE_STARS:
                        break
                    continue
            elif event.silent or not event.rate_passed:
                append(hop(ttl, None))
                stars += 1
                if stars >= _MAX_CONSECUTIVE_STARS:
                    break
                continue
            stars = 0
            digest = digest64(
                (jitter_prefix + str(ttl)).encode("utf-8")
            ).digest()
            jitter = (from_bytes(digest[:8], "big") / 2**64) * 0.3
            if terminal is None:
                quote = event.quote
                lses = (
                    quote_records(quote, ttl) if quote is not None else None
                )
                info = match(candidates_for(event.node), lses)
                if info is None:
                    append(hop(
                        ttl,
                        event.source_ip,
                        round(
                            (ttl + event.return_hops) * _HOP_LATENCY_MS
                            + jitter,
                            3,
                        ),
                        event.reply_ip_ttl,
                        lses,
                        False,
                        False,
                        event.node,
                    ))
                else:
                    append(hop(
                        ttl,
                        event.source_ip,
                        round(
                            (ttl + event.return_hops) * _HOP_LATENCY_MS
                            + jitter,
                            3,
                        ),
                        event.reply_ip_ttl,
                        lses,
                        False,
                        False,
                        event.node,
                        info.asn,
                        info.received_planes,
                        info.uniform,
                    ))
                continue
            is_destination = terminal.kind is not ReplyKind.TIME_EXCEEDED
            info = match(candidates_for(terminal.truth_router_id), None)
            append(hop(
                ttl,
                terminal.source_ip,
                round(
                    (ttl + terminal.truth_forward_hops) * _HOP_LATENCY_MS
                    + jitter,
                    3,
                ),
                terminal.reply_ip_ttl,
                None,
                False,
                is_destination,
                terminal.truth_router_id,
                info.asn if info is not None else None,
                # a destination reply is not forwarding evidence
                # (see _annotate_truth)
                (
                    () if is_destination or info is None
                    else info.received_planes
                ),
                info.uniform if info is not None else True,
            ))
            if is_destination:
                reached = True
                break
        prober.accounting.probes += probes
        self._engine.stats.probes_synthesized += probes
        trace = Trace(
            vp=vp_name or f"vp{vp_router_id}",
            vp_router_id=vp_router_id,
            destination=destination,
            flow_id=flow_id,
            hops=tuple(hops),
            reached=reached,
        )
        return self._reveal_hidden(trace, truth)

    # -- annotation ------------------------------------------------------------

    def _annotate_truth(self, trace: Trace, truth: list[TruthHop]) -> Trace:
        by_router: dict[int, list[TruthHop]] = {}
        for t in truth:
            by_router.setdefault(t.router_id, []).append(t)
        annotate = (
            TraceHop.with_annotation
            if self._engine.memoize
            # pre-change cost model: annotation copied hops through
            # dataclasses.replace and its per-call field introspection
            else replace
        )
        hops = []
        for hop in trace.hops:
            info = self._matching_truth(hop, by_router)
            if info is None:
                hops.append(hop)
                continue
            hops.append(
                annotate(
                    hop,
                    truth_asn=info.asn,
                    # A destination reply is not forwarding evidence: the
                    # PE answers on the target's behalf, so the labels it
                    # happened to carry for *other* packets do not apply.
                    truth_planes=(
                        () if hop.destination_reply else info.received_planes
                    ),
                    truth_uniform=info.uniform,
                )
            )
        return trace.with_hops(tuple(hops))

    @staticmethod
    def _matching_truth(
        hop: TraceHop, by_router: dict[int, list[TruthHop]]
    ) -> TruthHop | None:
        """The truth record for a hop's responding router.

        TE waypoints and policy splices can revisit a router, giving it
        several truth records; pick the visit whose received stack
        matches what the hop actually quoted.
        """
        if hop.truth_router_id is None:
            return None
        return TntProber._match_candidates(
            by_router.get(hop.truth_router_id), hop.lses
        )

    @staticmethod
    def _match_candidates(candidates, lses) -> TruthHop | None:
        """Pick the truth visit whose received stack matches the quote."""
        if not candidates:
            return None
        if len(candidates) == 1:
            # every fall-through below lands on candidates[0] anyway
            return candidates[0]
        if lses:
            quoted = tuple(e.label for e in lses)
            for candidate in candidates:
                if candidate.received_labels == quoted:
                    return candidate
        else:
            for candidate in candidates:
                if not candidate.received_labels:
                    return candidate
        return candidates[0]

    # -- revelation -------------------------------------------------------------

    def _reveal_hidden(self, trace: Trace, truth: list[TruthHop]) -> Trace:
        """Insert hidden MPLS hops (addresses only) behind their ending hop.

        A router is *hidden* when the truth walk shows it carried labels
        but it never answered a probe (pipe-mode tunnels: the LSE-TTL of
        255 shields it).  Each maximal hidden run is revealed atomically
        with probability ``reveal_success_rate``, mirroring TNT's
        trial-and-error revelation.
        """
        seen_routers = {
            h.truth_router_id for h in trace.hops if h.truth_router_id is not None
        }
        runs = self._hidden_runs(truth, seen_routers)
        if not runs:
            return trace
        network = self._engine.network
        hops = list(trace.hops)
        for run in reversed(runs):  # insert back-to-front to keep indices valid
            key = tuple(t.router_id for t in run)
            if not self._reveal_succeeds(trace.flow_id, key):
                continue
            anchor = self._anchor_index(hops, truth, run)
            if anchor is None:
                continue
            revealed = []
            prev_router = self._predecessor(truth, run[0].router_id)
            for t in run:
                router = network.router(t.router_id)
                address = (
                    router.interfaces.get(prev_router)
                    if prev_router is not None
                    else router.loopback
                )
                if address is None:
                    address = router.loopback
                revealed.append(
                    TraceHop(
                        probe_ttl=hops[anchor].probe_ttl,
                        address=address,
                        tnt_revealed=True,
                        truth_router_id=t.router_id,
                        truth_asn=t.asn,
                        truth_planes=t.received_planes,
                        truth_uniform=t.uniform,
                    )
                )
                prev_router = t.router_id
            hops[anchor:anchor] = revealed
        return trace.with_hops(tuple(hops))

    def _reveal_succeeds(self, flow_id: int, key: tuple[int, ...]) -> bool:
        """One revelation attempt per retry budget slot.

        Attempt 0 reuses the legacy draw key so fault-free campaigns
        reproduce the seed bit-for-bit -- with or without a retry
        policy.  Retries exist to recover *lost* revelation probes
        (injected loss), never to re-roll the technique's own verdict: a
        clean failure (DPR/BRPR simply cannot reveal this tunnel) is
        final, so only a loss draw advances to the next attempt, which
        then redraws independently.
        """
        faults = self._engine.faults
        for attempt in range(max(1, self._retry.max_attempts)):
            if attempt == 0:
                draw = unit_hash(self._seed, "reveal", flow_id, key)
            else:
                draw = unit_hash(
                    self._seed, "reveal", flow_id, key, attempt
                )
            if faults is not None and faults.reveal_lost(
                flow_id, key, attempt
            ):
                continue
            return draw < self._reveal_rate
        return False

    @staticmethod
    def _hidden_runs(
        truth: list[TruthHop], seen: set[int | None]
    ) -> list[list[TruthHop]]:
        runs: list[list[TruthHop]] = []
        current: list[TruthHop] = []
        for t in truth:
            if t.received_labels and t.router_id not in seen:
                current.append(t)
            else:
                if current:
                    runs.append(current)
                current = []
        if current:
            runs.append(current)
        return runs

    @staticmethod
    def _anchor_index(
        hops: list[TraceHop], truth: list[TruthHop], run: list[TruthHop]
    ) -> int | None:
        """Index in ``hops`` before which the revealed run is inserted:
        the first observed hop at or after the run's end on the truth path."""
        order = {t.router_id: i for i, t in enumerate(truth)}
        run_end = order[run[-1].router_id]
        best: tuple[int, int] | None = None
        for i, hop in enumerate(hops):
            rid = hop.truth_router_id
            if rid is None or rid not in order:
                continue
            pos = order[rid]
            if pos > run_end and (best is None or pos < best[0]):
                best = (pos, i)
        return best[1] if best else None

    @staticmethod
    def _predecessor(truth: list[TruthHop], router_id: int) -> int | None:
        for i, t in enumerate(truth):
            if t.router_id == router_id:
                return truth[i - 1].router_id if i > 0 else None
        return None
