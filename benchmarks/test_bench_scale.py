"""Scale -- a paper-scale (>= 1M trace) sharded campaign, measured.

The paper's measurement collected ~7.7M traceroutes from 50 VPs across
60 ASes; the ROADMAP's open item asks for "1M+ trace runs" that survive
crashes without losing work.  This benchmark runs a million-trace
campaign through the work-stealing shard executor end to end -- sharded
synthetic topogen, per-shard JSONL spills, lease supervision, atomic
checkpoints -- and records wall clock and peak RSS to
``BENCH_scale.json`` for CI to archive and regression-gate.

The point of the RSS number: traces stream to spill files instead of
accumulating in RAM, so peak memory is a function of the largest single
AS, not of campaign size.  A regression that starts buffering the
campaign shows up here as an RSS cliff long before it kills a real run.

``AREST_SCALE_BENCH_TRACES`` scales the run down (the CI ``scale-smoke``
job uses ~5000); unset, the target is the full 1M+.
"""

import json
import math
import os
import time

from repro.campaign import ScaleCampaign
from repro.topogen.synthetic import SyntheticPortfolio, synthetic_vantage_points
from repro.util.atomicio import atomic_write_text

from benchmarks.conftest import emit

BENCH_FILENAME = "BENCH_scale.json"

_SEED = 1
_VPS_PER_AS = 10
#: high enough that the per-AS prefix count, not this cap, sets the
#: target list (~10 prefixes x 5 flows at the paper profile)
_TARGETS_PER_AS = 120
_PER_PREFIX = 5
#: two VP buckets per AS: every AS exercises the shard merge path
_VPS_PER_SHARD = 5
_JOBS = 2
#: conservative lower bound on traces per AS at the paper profile
#: (observed ~490 = 10 VPs x ~9.8 prefixes x 5 flows); sizing with the
#: lower bound overshoots the trace target slightly rather than missing
_TRACES_PER_AS_FLOOR = 450


def _target_traces() -> int:
    raw = os.environ.get("AREST_SCALE_BENCH_TRACES", "")
    return int(raw) if raw else 1_000_000


def test_bench_scale_campaign(tmp_path):
    target = _target_traces()
    n_ases = max(1, math.ceil(target / _TRACES_PER_AS_FLOOR))
    campaign = ScaleCampaign(
        portfolio=SyntheticPortfolio(n_ases, seed=_SEED, profile="paper"),
        vantage_points=synthetic_vantage_points(_VPS_PER_AS),
        seed=_SEED,
        vps_per_as=_VPS_PER_AS,
        targets_per_as=_TARGETS_PER_AS,
        per_prefix=_PER_PREFIX,
    )
    out = tmp_path / "run"
    tick = time.perf_counter()
    report = campaign.run(
        out, jobs=_JOBS, vps_per_shard=_VPS_PER_SHARD
    )
    wall = time.perf_counter() - tick

    assert not report.interrupted
    assert report.failures == {} and report.quarantined == {}
    assert len(report.completed) == n_ases
    traces = report.traces_total()
    assert traces >= target

    stats = campaign.stats
    spill_bytes = sum(
        p.stat().st_size for p in (out / "spills").iterdir()
    )
    payload = {
        "benchmark": "scale_campaign",
        "target_traces": target,
        "traces": traces,
        "n_ases": n_ases,
        "vps_per_as": _VPS_PER_AS,
        "vps_per_shard": _VPS_PER_SHARD,
        "jobs": _JOBS,
        "shards": stats["shards_total"],
        "workers_spawned": stats["workers_spawned"],
        "wall_seconds": round(wall, 1),
        "traces_per_sec": round(traces / wall, 1),
        "rss_peak_bytes": stats["rss_peak_bytes"],
        "rss_peak_mib": round(stats["rss_peak_bytes"] / (1 << 20), 1),
        "spill_bytes": spill_bytes,
        "checkpoint_bytes": (out / "checkpoint.jsonl").stat().st_size,
    }
    atomic_write_text(
        BENCH_FILENAME, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(
        f"{traces:,} traces across {n_ases} ASes / "
        f"{stats['shards_total']} shards in {wall:,.0f}s "
        f"({traces / wall:,.0f}/s), peak RSS "
        f"{stats['rss_peak_bytes'] / (1 << 20):,.0f} MiB"
    )
    emit(f"machine-readable stats -> {BENCH_FILENAME}")
