"""Properties: execution geometry is invisible in paper-scale results.

The acceptance criteria for the shard executor, stated as properties:

1. For any ``--jobs`` and any ``--shards`` value, the canonical report
   JSON and the final checkpoint bytes equal the serial single-shard
   reference -- work stealing, lease recovery and re-sharding are pure
   execution-plane concerns.
2. A campaign SIGKILLed at an arbitrary instant and then resumed
   produces byte-identical artifacts to one that was never interrupted:
   zero traces lost, zero duplicated.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import ScaleCampaign
from repro.netsim.faults import FaultPlan
from repro.topogen.synthetic import SyntheticPortfolio
from repro.util.retry import RetryPolicy

from tests.conftest import scaled_examples

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for the worker pool",
)

_serial_cache: dict[tuple, tuple[str, bytes]] = {}


def _campaign(n_ases: int, seed: int, faulty: bool) -> ScaleCampaign:
    plan = (
        FaultPlan(probe_loss=0.05, snmp_timeout_rate=0.1, seed=seed)
        if faulty
        else None
    )
    return ScaleCampaign(
        portfolio=SyntheticPortfolio(n_ases, seed=seed),
        seed=seed,
        vps_per_as=2,
        targets_per_as=4,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=2) if faulty else None,
    )


def _run(
    n_ases: int, seed: int, faulty: bool, jobs: int, vps_per_shard
) -> tuple[str, bytes]:
    with tempfile.TemporaryDirectory() as tmp:
        report = _campaign(n_ases, seed, faulty).run(
            tmp, jobs=jobs, vps_per_shard=vps_per_shard
        )
        return (
            json.dumps(report.as_dict(), sort_keys=True),
            (Path(tmp) / "checkpoint.jsonl").read_bytes(),
        )


def _serial_reference(n_ases, seed, faulty) -> tuple[str, bytes]:
    key = (n_ases, seed, faulty)
    if key not in _serial_cache:
        _serial_cache[key] = _run(
            n_ases, seed, faulty, jobs=1, vps_per_shard=None
        )
    return _serial_cache[key]


@settings(max_examples=scaled_examples(4), deadline=None)
@given(
    n_ases=st.integers(min_value=1, max_value=3),
    seed=st.sampled_from((1, 3)),
    faulty=st.booleans(),
    jobs=st.sampled_from((1, 2, 3)),
    vps_per_shard=st.sampled_from((1, 2)),
)
def test_jobs_and_shards_are_invisible_in_the_bytes(
    n_ases, seed, faulty, jobs, vps_per_shard
):
    serial_report, serial_bytes = _serial_reference(n_ases, seed, faulty)
    report, checkpoint = _run(n_ases, seed, faulty, jobs, vps_per_shard)
    assert report == serial_report
    assert checkpoint == serial_bytes


# -- kill -9 mid-campaign, then resume ---------------------------------------

_KILLED_CAMPAIGN = """
import sys
from repro.campaign import ScaleCampaign
from repro.topogen.synthetic import SyntheticPortfolio

out = sys.argv[1]
print("ready", flush=True)
campaign = ScaleCampaign(
    portfolio=SyntheticPortfolio(6, seed=3),
    seed=3,
    vps_per_as=2,
    targets_per_as=8,
)
campaign.run(out, jobs=2, vps_per_shard=1)
print("done", flush=True)
"""


class TestKillNineResume:
    """SIGKILL at an arbitrary instant loses and duplicates nothing."""

    def _reference(self, tmp_path) -> tuple[str, bytes]:
        out = tmp_path / "reference"
        report = ScaleCampaign(
            portfolio=SyntheticPortfolio(6, seed=3),
            seed=3,
            vps_per_as=2,
            targets_per_as=8,
        ).run(out)
        return (
            json.dumps(report.as_dict(), sort_keys=True),
            (out / "checkpoint.jsonl").read_bytes(),
        )

    @pytest.mark.parametrize("delay_ms", [20, 90, 250])
    def test_resume_after_sigkill_matches_uninterrupted(
        self, tmp_path, delay_ms
    ):
        out = tmp_path / "killed"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        # own session: killpg reaps the supervisor AND its workers
        child = subprocess.Popen(
            [sys.executable, "-c", _KILLED_CAMPAIGN, str(out)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
            start_new_session=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            time.sleep(delay_ms / 1000)
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                os.killpg(child.pid, signal.SIGKILL)
                child.wait()

        resumed = ScaleCampaign(
            portfolio=SyntheticPortfolio(6, seed=3),
            seed=3,
            vps_per_as=2,
            targets_per_as=8,
        ).run(out, jobs=2, vps_per_shard=1, resume=True)
        report_json = json.dumps(resumed.as_dict(), sort_keys=True)
        reference_json, reference_bytes = self._reference(tmp_path)
        assert report_json == reference_json
        assert (out / "checkpoint.jsonl").read_bytes() == reference_bytes
