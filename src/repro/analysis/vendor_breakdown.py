"""Per-vendor segment and flag breakdown over columnar batches.

Which vendor's gear is behind each detected segment?  The paper's
Table 1 ranges and Sec. 5 fingerprints answer per hop; this module
rolls the evidence up per *segment* and tallies flags per vendor, in
one pass over a :class:`~repro.core.columnar.TraceBatch` -- the
``arest detect --vendor-breakdown`` view and the campaign report's
vendor section.

Attribution ladder (strongest evidence wins):

1. a **confirming hop**: fingerprinted AND its top label inside that
   vendor's SR range (the hop that made a CVR a CVR);
2. else the first fingerprinted hop of the segment (evidence of who
   owns the gear, even if the label fell outside the ranges);
3. else pure Table 1 inference from the labels (prefixed ``range:`` --
   ranges overlap, so this is a vendor *class*, not an identification);
4. else ``unattributed``.

The accumulator merges across streamed batches
(:meth:`~repro.core.columnar.TraceBatch.iter_jsonl` chunks), so
paper-scale archives break down in bounded memory.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from repro.core.columnar import ColumnarDetector, TraceBatch
from repro.core.flags import Flag
from repro.core.segments import DetectedSegment
from repro.core.vendor_ranges import TABLE1_RANGES

#: attribution bucket when no fingerprint or range evidence exists
UNATTRIBUTED = "unattributed"

#: prefix marking Table 1 label-range inference (no fingerprint backing)
RANGE_PREFIX = "range:"


def attribute_vendor(
    batch: TraceBatch, base: int, segment: DetectedSegment
) -> str:
    """Vendor token for one segment (see the module attribution ladder).

    ``base`` is the segment's trace's hop offset into the batch columns
    (``batch.offsets[k]``).
    """
    vendor_id = batch.vendor_id
    vendor_names = batch.vendor_names
    in_range = batch.in_range
    first_fingerprinted = ""
    for hop_index in segment.hop_indices:
        g = base + hop_index
        vid = vendor_id[g]
        if vid:
            name = vendor_names[vid]
            if in_range[g]:
                return name  # the confirming hop
            if not first_fingerprinted:
                first_fingerprinted = name
    if first_fingerprinted:
        return first_fingerprinted
    inferred = {
        vendor.value
        for label in segment.top_labels
        for vendor, entries in TABLE1_RANGES.items()
        if any(label in r for r, _kind in entries)
    }
    if inferred:
        return RANGE_PREFIX + "|".join(sorted(inferred))
    return UNATTRIBUTED


class VendorBreakdownAccumulator:
    """Streaming per-vendor flag tally over columnar detections.

    Feed (batch, detections) chunk pairs as they come off
    :meth:`TraceBatch.iter_jsonl` + :meth:`ColumnarDetector.detect_batch`;
    the document merges identically regardless of chunking (distinct
    segments deduplicate on ``(vendor, segment.key())`` across chunks).
    """

    def __init__(self) -> None:
        self.traces = 0
        self.occurrences = 0
        #: (vendor, flag name) -> occurrence count
        self._occurrence_counts: Counter = Counter()
        #: (vendor, flag name) -> distinct-segment count
        self._distinct_counts: Counter = Counter()
        self._seen: set = set()

    def feed_batch(
        self,
        batch: TraceBatch,
        detections: list[list[DetectedSegment]],
    ) -> None:
        """Fold one batch's per-trace detections (one pass)."""
        if len(detections) != len(batch):
            raise ValueError("one detection list per batch trace")
        offsets = batch.offsets
        seen = self._seen
        occurrence_counts = self._occurrence_counts
        distinct_counts = self._distinct_counts
        self.traces += len(detections)
        for k, segments in enumerate(detections):
            if not segments:
                continue
            base = offsets[k]
            for segment in segments:
                vendor = attribute_vendor(batch, base, segment)
                bucket = (vendor, segment.flag.name)
                occurrence_counts[bucket] += 1
                self.occurrences += 1
                key = (vendor, segment.key())
                if key not in seen:
                    seen.add(key)
                    distinct_counts[bucket] += 1

    def as_doc(self) -> dict:
        """JSON-ready document (deterministically ordered).

        Vendors sort by distinct-segment count (desc) then name; flags
        within a vendor follow the :class:`Flag` declaration order.
        """
        vendor_totals: Counter = Counter()
        for (vendor, _flag), count in self._distinct_counts.items():
            vendor_totals[vendor] += count
        vendors = {}
        for vendor in sorted(
            vendor_totals, key=lambda v: (-vendor_totals[v], v)
        ):
            flags = {
                flag.name: self._distinct_counts[(vendor, flag.name)]
                for flag in Flag
                if self._distinct_counts[(vendor, flag.name)]
            }
            vendors[vendor] = {
                "distinct_segments": vendor_totals[vendor],
                "occurrences": sum(
                    count
                    for (v, _f), count in self._occurrence_counts.items()
                    if v == vendor
                ),
                "flags": flags,
            }
        return {
            "traces": self.traces,
            "segment_occurrences": self.occurrences,
            "distinct_segments": len(self._seen),
            "vendors": vendors,
        }


def vendor_breakdown(
    pairs: Iterable[tuple],
    detector: ColumnarDetector | None = None,
) -> dict:
    """One-shot breakdown over (trace, fingerprints) pairs.

    Convenience wrapper: builds the batch, runs the batch detector, and
    returns :meth:`VendorBreakdownAccumulator.as_doc`.
    """
    if detector is None:
        detector = ColumnarDetector()
    batch = TraceBatch.from_pairs(pairs)
    accumulator = VendorBreakdownAccumulator()
    accumulator.feed_batch(batch, detector.detect_batch(batch))
    return accumulator.as_doc()


def campaign_vendor_breakdown(results: Mapping[int, object]) -> dict:
    """Breakdown over finished campaign results (the report path).

    Reuses the segments each campaign already detected -- the batch is
    built only to carry the fingerprint/range columns that attribution
    reads, so the numbers agree with every other report section by
    construction.
    """
    accumulator = VendorBreakdownAccumulator()
    for as_id in sorted(results):
        result = results[as_id]
        trace_segments = result.trace_segments
        if not trace_segments:
            continue
        fingerprints = result.fingerprints
        batch = TraceBatch.from_pairs(
            (trace, fingerprints) for trace, _segments in trace_segments
        )
        accumulator.feed_batch(
            batch, [segments for _trace, segments in trace_segments]
        )
    return accumulator.as_doc()
