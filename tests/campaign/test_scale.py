"""Unit tests for the paper-scale campaign driver.

Fast, in-process (``jobs=1``) coverage of the orchestration logic:
resume skipping, quarantine surfacing, disk-full degradation, churn
refusal, canonical checkpoint completion, and the stats surface.  The
jobs/shards byte-identity contract lives in
``test_scale_properties.py``.
"""

import json
from pathlib import Path

import pytest

import repro.campaign.scale as scale
from repro.campaign import ScaleCampaign
from repro.campaign.checkpoint import ShardCheckpoint
from repro.netsim.dynamics import ChurnPlan
from repro.topogen.synthetic import SyntheticPortfolio


def _campaign(n_ases: int = 2, seed: int = 1) -> ScaleCampaign:
    return ScaleCampaign(
        portfolio=SyntheticPortfolio(n_ases, seed=seed),
        seed=seed,
        vps_per_as=2,
        targets_per_as=4,
    )


class TestConstruction:
    def test_churn_plans_are_refused(self):
        with pytest.raises(ValueError, match="churn"):
            ScaleCampaign(
                portfolio=SyntheticPortfolio(2, seed=1),
                churn_plan=ChurnPlan.intensity(0.2, seed=1),
            )

    def test_inactive_churn_plan_is_fine(self):
        ScaleCampaign(
            portfolio=SyntheticPortfolio(2, seed=1),
            churn_plan=ChurnPlan.none(),
        )


class TestRun:
    def test_clean_run_banks_everything(self, tmp_path):
        report = _campaign().run(tmp_path)
        assert set(report.completed) == {1, 2}
        assert not report.interrupted
        assert report.failures == {} and report.quarantined == {}
        assert report.traces_total() > 0
        spills = sorted(p.name for p in (tmp_path / "spills").iterdir())
        assert spills == [
            "as000001-b000.jsonl",
            "as000002-b000.jsonl",
        ]
        store = ShardCheckpoint(
            tmp_path / "checkpoint.jsonl", _campaign()._scale_config()
        )
        store.load()
        assert store.complete

    def test_resume_after_completion_reruns_nothing(self, tmp_path):
        first = _campaign().run(tmp_path)
        checkpoint = (tmp_path / "checkpoint.jsonl").read_bytes()
        campaign = _campaign()
        again = campaign.run(tmp_path, resume=True)
        assert json.dumps(again.as_dict()) == json.dumps(first.as_dict())
        assert (tmp_path / "checkpoint.jsonl").read_bytes() == checkpoint
        assert campaign.stats.get("shards_probed", 0) == 0

    def test_extending_a_completed_run_probes_only_the_new_ases(
        self, tmp_path
    ):
        # complete a 1-AS campaign, then resume asking for both
        campaign = _campaign()
        campaign.run(tmp_path / "grown", as_ids=[1])
        resumed = _campaign()
        report = resumed.run(tmp_path / "grown", resume=True)
        assert set(report.completed) == {1, 2}
        assert resumed.stats["shards_probed"] == 1  # only AS 2
        # the grown checkpoint canonicalizes to the same bytes as a
        # fresh run over both ASes
        _campaign().run(tmp_path / "fresh")
        assert (tmp_path / "grown" / "checkpoint.jsonl").read_bytes() == (
            tmp_path / "fresh" / "checkpoint.jsonl"
        ).read_bytes()

    def test_vps_per_shard_layout_is_respected(self, tmp_path):
        campaign = _campaign()
        report = campaign.run(tmp_path, vps_per_shard=1)
        assert set(report.completed) == {1, 2}
        assert campaign.stats["shards_total"] == 4  # 2 ASes x 2 VPs
        spills = sorted(p.name for p in (tmp_path / "spills").iterdir())
        assert len(spills) == 4

    def test_worker_caches_never_leak_across_campaigns(self, tmp_path):
        # A process that served one campaign (workers are persistent,
        # jobs=1 runs in-process) must rebuild every shard context for
        # the next one: contexts embed the portfolio/seed, and as_ids
        # collide across campaigns.  Regression: the runner cache was
        # invalidated per run token but the context cache survived,
        # so campaign B probed campaign A's topologies.
        scale._RUNNER_CACHE.clear()
        scale._CONTEXT_CACHE.clear()
        _campaign(seed=9).run(tmp_path / "other")  # fills the caches
        after = _campaign().run(tmp_path / "after")
        scale._RUNNER_CACHE.clear()
        scale._CONTEXT_CACHE.clear()
        clean = _campaign().run(tmp_path / "clean")
        assert json.dumps(after.as_dict(), sort_keys=True) == json.dumps(
            clean.as_dict(), sort_keys=True
        )
        assert (tmp_path / "after" / "checkpoint.jsonl").read_bytes() == (
            tmp_path / "clean" / "checkpoint.jsonl"
        ).read_bytes()

    def test_stats_surface(self, tmp_path):
        campaign = _campaign()
        campaign.run(tmp_path)
        stats = campaign.stats
        assert stats["ases_analyzed"] == 2
        assert stats["shards_probed"] == 2
        assert stats["traces_total"] > 0
        assert stats["rss_peak_bytes"] > 0
        assert stats["wall_seconds"] >= 0
        assert stats["shards_quarantined"] == 0

    def test_jobs_validation(self, tmp_path):
        with pytest.raises(ValueError):
            _campaign().run(tmp_path, jobs=0)


class TestDegradation:
    def test_disk_full_shard_is_quarantined_cleanly(
        self, tmp_path, monkeypatch
    ):
        real = scale._probe_shard_worker

        def worker(payload, ctl):
            shard = payload[3]
            if shard.as_id == 2:
                return {
                    "status": "disk-full",
                    "error": "No space left on device",
                }
            return real(payload, ctl)

        monkeypatch.setattr(scale, "_probe_shard_worker", worker)
        report = _campaign().run(tmp_path)
        assert set(report.completed) == {1}
        assert report.quarantined["2:0"]["reason"] == "disk-full"
        assert not report.interrupted  # degraded, not interrupted
        monkeypatch.undo()
        # the circuit breaker stays open across resume: the shard is
        # not re-dispatched, the quarantine is surfaced again
        resumed = _campaign()
        again = resumed.run(tmp_path, resume=True)
        assert again.quarantined["2:0"]["reason"] == "disk-full"
        assert resumed.stats.get("shards_probed", 0) == 0

    def test_deterministic_probe_error_fails_the_as(
        self, tmp_path, monkeypatch
    ):
        real = scale._probe_shard_worker

        def worker(payload, ctl):
            shard = payload[3]
            if shard.as_id == 1:
                raise RuntimeError("synthetic probe bug")
            return real(payload, ctl)

        monkeypatch.setattr(scale, "_probe_shard_worker", worker)
        report = _campaign().run(tmp_path)
        assert set(report.completed) == {2}
        assert report.failures[1]["stage"] == "probe"
        assert "synthetic probe bug" in report.failures[1]["error"]
        assert not report.interrupted

    def test_interrupted_probe_phase_resumes_to_identical_bytes(
        self, tmp_path, monkeypatch
    ):
        reference_dir = tmp_path / "reference"
        reference = _campaign(n_ases=3).run(reference_dir)

        real = scale._probe_shard_worker
        calls = []

        def flaky(payload, ctl):
            if len(calls) >= 1:  # first shard lands, then Ctrl-C
                raise KeyboardInterrupt
            calls.append(payload[3].key)
            return real(payload, ctl)

        out = tmp_path / "run"
        monkeypatch.setattr(scale, "_probe_shard_worker", flaky)
        partial = _campaign(n_ases=3).run(out)
        assert partial.interrupted
        assert partial.completed == {}
        monkeypatch.undo()

        resumed = _campaign(n_ases=3).run(out, resume=True)
        assert json.dumps(resumed.as_dict()) == json.dumps(
            reference.as_dict()
        )
        assert (out / "checkpoint.jsonl").read_bytes() == (
            reference_dir / "checkpoint.jsonl"
        ).read_bytes()


class TestReport:
    def test_summary_lines(self, tmp_path):
        report = _campaign().run(tmp_path)
        text = report.summary()
        assert "2 AS(es) analyzed" in text
        assert "INTERRUPTED" not in text

    def test_as_dict_shape(self, tmp_path):
        doc = _campaign().run(tmp_path).as_dict()
        assert set(doc) == {
            "completed",
            "failures",
            "quarantined",
            "interrupted",
            "traces_total",
            "fault_counters",
            "retry_accounting",
            "anomaly_counts",
        }
        entry = doc["completed"]["1"]
        assert {"flags", "traces_total", "routers"} <= set(entry)
