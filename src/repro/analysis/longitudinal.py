"""Longitudinal SR-MPLS adoption tracking (the paper's future work).

Sec. 9: "Future work plans to focus on ... longitudinal analyses to
track the evolution of SR-MPLS adoption patterns over time."  This
module implements that study over the simulator: the portfolio's
deployment scenarios evolve year by year (each AS starts its SR
migration at some adoption year and ramps its SR share up), the
campaign re-runs per year, and the tracker reports the adoption curve
AReST would have measured.

The evolution model is deliberately simple and fully deterministic:

- every AS that (per the 2025-portfolio ground truth) deploys SR gets an
  adoption year hashed into [first_year, reference_year]; survey/Cisco-
  confirmed ASes adopt earlier on average (they were the early movers);
- before its adoption year an AS runs classic LDP; from the adoption
  year on, its SR share ramps linearly to the 2025 value over
  ``ramp_years``;
- ASes that do not deploy SR by 2025 never do within the window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.campaign.runner import CampaignRunner
from repro.topogen.portfolio import AsSpec, Portfolio, default_portfolio
from repro.util.determinism import unit_hash

#: the paper's measurement year: scenarios are calibrated to this point
REFERENCE_YEAR = 2025


@dataclass(frozen=True, slots=True)
class AdoptionSnapshot:
    """What AReST would have measured in one year."""

    year: int
    ases_analyzed: int
    ases_with_sr_evidence: int
    sr_interfaces: int
    mpls_interfaces: int

    @property
    def detection_share(self) -> float:
        """Fraction of analyzed ASes with strong SR evidence."""
        if self.ases_analyzed == 0:
            return 0.0
        return self.ases_with_sr_evidence / self.ases_analyzed

    @property
    def sr_interface_share(self) -> float:
        """SR interfaces over all MPLS-involved interfaces."""
        total = self.sr_interfaces + self.mpls_interfaces
        return self.sr_interfaces / total if total else 0.0


def adoption_year(spec: AsSpec, first_year: int, seed: int = 0) -> int:
    """The year this AS begins its SR migration (deterministic)."""
    window = REFERENCE_YEAR - first_year
    draw = unit_hash("adoption", seed, spec.as_id)
    if spec.confirmation.confirmed:
        # early movers: the confirmed deployments skew to the window's
        # first half
        draw *= 0.6
    return first_year + int(draw * window)


def scenario_in_year(
    spec: AsSpec,
    year: int,
    first_year: int,
    ramp_years: int = 3,
    seed: int = 0,
):
    """The AS's deployment scenario as it stood in ``year``."""
    scenario = spec.scenario
    if not scenario.deploys_sr:
        return scenario
    start = adoption_year(spec, first_year, seed)
    if year < start:
        # pre-migration: the same network, but running LDP only
        return replace(
            scenario,
            deploys_sr=False,
            sr_share=0.0,
            sr_policy_share=0.0,
            uhp=False,
            heterogeneous_srgb=False,
        )
    progress = min(1.0, (year - start + 1) / max(1, ramp_years))
    return replace(
        scenario,
        sr_share=min(1.0, scenario.sr_share * progress)
        if progress < 1.0
        else scenario.sr_share,
        sr_policy_share=scenario.sr_policy_share * progress,
    )


class AdoptionTracker:
    """Runs yearly campaigns over an evolving portfolio."""

    def __init__(
        self,
        portfolio: Portfolio | None = None,
        first_year: int = 2018,
        last_year: int = REFERENCE_YEAR,
        as_ids: list[int] | None = None,
        seed: int = 0,
        targets_per_as: int = 12,
        vps_per_as: int = 2,
    ) -> None:
        if last_year < first_year:
            raise ValueError("last_year must not precede first_year")
        self._portfolio = portfolio or default_portfolio()
        self._first_year = first_year
        self._last_year = last_year
        self._seed = seed
        self._targets = targets_per_as
        self._vps = vps_per_as
        if as_ids is None:
            as_ids = [s.as_id for s in self._portfolio.analyzed()]
        self._as_ids = as_ids

    def run(self) -> list[AdoptionSnapshot]:
        """One snapshot per year, chronological."""
        snapshots = []
        for year in range(self._first_year, self._last_year + 1):
            snapshots.append(self._run_year(year))
        return snapshots

    def _run_year(self, year: int) -> AdoptionSnapshot:
        specs = tuple(
            replace(
                self._portfolio.spec(as_id),
                scenario=scenario_in_year(
                    self._portfolio.spec(as_id),
                    year,
                    self._first_year,
                    seed=self._seed,
                ),
            )
            for as_id in self._as_ids
        )
        runner = CampaignRunner(
            portfolio=Portfolio(specs),
            seed=self._seed,
            targets_per_as=self._targets,
            vps_per_as=self._vps,
        )
        detected = sr_ifaces = mpls_ifaces = 0
        for as_id in self._as_ids:
            result = runner.run_as(as_id)
            analysis = result.analysis
            # strong evidence only: LSO fires on classic service stacks
            # too, which would mask the adoption signal entirely
            detected += analysis.has_sr_evidence(strong_only=True)
            sr_ifaces += len(analysis.sr_addresses)
            mpls_ifaces += len(analysis.mpls_addresses)
        return AdoptionSnapshot(
            year=year,
            ases_analyzed=len(self._as_ids),
            ases_with_sr_evidence=detected,
            sr_interfaces=sr_ifaces,
            mpls_interfaces=mpls_ifaces,
        )
