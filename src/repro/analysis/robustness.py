"""Degradation study: AReST's guarantees under an imperfect data plane.

The paper's headline claims -- zero CVR false positives, CO dominance at
the ground-truth AS, high detection of confirmed deployments -- were
established over a pristine simulated campaign.  This module sweeps a
fault intensity (per-probe loss, optionally ICMP rate limiting and SNMP
timeouts) across a portfolio slice and scores, per flag:

- **recall**: the share of the fault-free baseline's distinct segments
  still detected at the fault level (a degradation curve anchor);
- **precision**: TP / (TP + FP) against simulator ground truth, which
  must stay at 1.0 for CVR -- the zero-FP guarantee may lose recall
  under loss, but must never start hallucinating.

Everything is deterministic given the seed, so degradation curves are
reproducible artifacts, not Monte Carlo noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.analysis.validation import validate_against_truth
from repro.campaign.runner import AsCampaignResult, CampaignReport, CampaignRunner
from repro.core.flags import Flag, STRONG_FLAGS
from repro.netsim.dynamics import ChurnPlan
from repro.netsim.faults import FaultCounters, FaultPlan
from repro.util.retry import RetryPolicy
from repro.util.tables import format_table

#: one AS per deployment flavour, mirroring the robustness benchmark
DEFAULT_SLICE = (7, 15, 27, 31, 46)


@dataclass(frozen=True, slots=True)
class FlagDegradation:
    """How one flag held up at one fault level."""

    flag: Flag
    #: distinct segments the fault-free baseline detected
    baseline_segments: int
    #: distinct segments detected at this fault level
    detected_segments: int
    #: baseline segments still detected at this fault level
    retained_segments: int
    true_positives: int
    false_positives: int

    @property
    def recall(self) -> float:
        """Baseline segments retained (1.0 when the baseline is empty)."""
        if self.baseline_segments == 0:
            return 1.0
        return self.retained_segments / self.baseline_segments

    @property
    def precision(self) -> float:
        """TP / (TP + FP) against ground truth (1.0 when nothing fired)."""
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 1.0


@dataclass(slots=True)
class DegradationLevel:
    """Scores for one fault intensity across the studied slice."""

    probe_loss: float
    #: headline corruption intensity (0.0 on loss-axis sweeps)
    corruption: float = 0.0
    #: headline churn intensity (0.0 off the churn axis)
    churn: float = 0.0
    per_flag: dict[Flag, FlagDegradation] = field(default_factory=dict)
    confirmed_detected: int = 0
    confirmed_total: int = 0
    failed_ases: int = 0
    counters: FaultCounters = field(default_factory=FaultCounters)
    retries: int = 0
    #: traces the sanitizer quarantined at this level
    quarantined: int = 0

    @property
    def cvr_false_positives(self) -> int:
        """The zero-FP guarantee's subject: CVR FPs at this level."""
        cvr = self.per_flag.get(Flag.CVR)
        return cvr.false_positives if cvr else 0

    @property
    def strong_false_positives(self) -> int:
        """FPs across the strong (CVR/CO) flags."""
        return sum(
            self.per_flag[f].false_positives
            for f in STRONG_FLAGS
            if f in self.per_flag
        )


@dataclass(slots=True)
class DegradationStudy:
    """A full sweep: one :class:`DegradationLevel` per fault intensity."""

    levels: list[DegradationLevel] = field(default_factory=list)
    as_ids: tuple[int, ...] = DEFAULT_SLICE
    seed: int = 1
    #: what the sweep varies: "loss" (probe loss), "corruption", or
    #: "churn" (topology dynamics intensity)
    axis: str = "loss"

    def level(self, intensity: float) -> DegradationLevel:
        """Look up one swept intensity (on the study's axis)."""
        for lvl in self.levels:
            if self.axis == "corruption":
                value = lvl.corruption
            elif self.axis == "churn":
                value = lvl.churn
            else:
                value = lvl.probe_loss
            if value == intensity:
                return lvl
        raise KeyError(f"no level with {self.axis}={intensity}")


def _segment_keys(
    results: Mapping[int, AsCampaignResult],
) -> dict[Flag, set[tuple]]:
    """Distinct (AS, segment) keys per flag across a result set."""
    keys: dict[Flag, set[tuple]] = {flag: set() for flag in Flag}
    for as_id, result in results.items():
        for _trace, segments in result.trace_segments:
            for segment in segments:
                keys[segment.flag].add((as_id, segment.key()))
    return keys


def _flag_validation_totals(
    results: Mapping[int, AsCampaignResult],
) -> dict[Flag, tuple[int, int]]:
    """Aggregated (TP, FP) per flag against ground truth."""
    totals: dict[Flag, tuple[int, int]] = {flag: (0, 0) for flag in Flag}
    for result in results.values():
        report = validate_against_truth(result)
        for flag, validation in report.per_flag.items():
            tp, fp = totals[flag]
            totals[flag] = (
                tp + validation.true_positives,
                fp + validation.false_positives,
            )
    return totals


def _confirmed_detection(
    results: Mapping[int, AsCampaignResult],
) -> tuple[int, int]:
    detected = total = 0
    for result in results.values():
        if not result.spec.confirmation.confirmed:
            continue
        total += 1
        if result.analysis.has_sr_evidence(strong_only=False):
            detected += 1
    return detected, total


def _score_level(
    probe_loss: float,
    report: CampaignReport,
    baseline_keys: dict[Flag, set[tuple]],
    corruption: float = 0.0,
    churn: float = 0.0,
) -> DegradationLevel:
    level_keys = _segment_keys(report)
    totals = _flag_validation_totals(report)
    detected, total = _confirmed_detection(report)
    level = DegradationLevel(
        probe_loss=probe_loss,
        corruption=corruption,
        churn=churn,
        confirmed_detected=detected,
        confirmed_total=total,
        failed_ases=len(report.failures),
        counters=report.fault_counters,
        retries=report.retry_accounting.retries,
        quarantined=report.traces_quarantined,
    )
    for flag in Flag:
        base = baseline_keys[flag]
        found = level_keys[flag]
        tp, fp = totals[flag]
        level.per_flag[flag] = FlagDegradation(
            flag=flag,
            baseline_segments=len(base),
            detected_segments=len(found),
            retained_segments=len(found & base),
            true_positives=tp,
            false_positives=fp,
        )
    return level


def degradation_study(
    loss_levels: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    as_ids: Iterable[int] = DEFAULT_SLICE,
    seed: int = 1,
    vps_per_as: int = 3,
    targets_per_as: int = 15,
    icmp_rate_limit: float | None = None,
    snmp_timeout_rate: float = 0.0,
    retry: RetryPolicy | None = None,
    corruption_levels: Sequence[float] | None = None,
    stale_replay_rate: float = 0.0,
    churn_levels: Sequence[float] | None = None,
) -> DegradationStudy:
    """Sweep fault intensities and score the degradation per flag.

    By default the sweep varies probe loss.  With ``corruption_levels``
    set, it varies the corruption mix of :meth:`FaultPlan.corruption`
    instead (``loss_levels`` is ignored); ``stale_replay_rate`` rides
    along at a fixed rate to expose the semantic attack sanitization
    cannot remove.  With ``churn_levels`` set, the sweep varies the
    topology-dynamics intensity of :meth:`ChurnPlan.intensity` instead
    -- link flaps with reconvergence transients, LSP churn, SR
    migration waves -- over a fault-free measurement plane (it takes
    precedence over the other axes).  The churn-free baseline is always
    computed (reusing the 0.0 level when it is part of the sweep) and
    anchors every recall figure.
    """
    as_ids = tuple(as_ids)
    retry = retry or RetryPolicy.none()

    def run(
        plan: FaultPlan, churn: ChurnPlan | None = None
    ) -> CampaignReport:
        runner = CampaignRunner(
            seed=seed,
            vps_per_as=vps_per_as,
            targets_per_as=targets_per_as,
            fault_plan=plan,
            churn_plan=churn,
            retry=retry,
        )
        return runner.run_portfolio(as_ids=list(as_ids))

    def plan_for_loss(loss: float) -> FaultPlan:
        plan = FaultPlan(
            probe_loss=loss,
            icmp_rate_limit=icmp_rate_limit,
            snmp_timeout_rate=snmp_timeout_rate,
            seed=seed,
        )
        return plan if plan.active else FaultPlan.none()

    def plan_for_corruption(rate: float) -> FaultPlan:
        plan = FaultPlan.corruption(rate, seed=seed)
        if stale_replay_rate > 0.0:
            plan = replace(plan, stale_replay_rate=stale_replay_rate)
        return plan if plan.active else FaultPlan.none()

    baseline_report = run(FaultPlan.none())
    baseline_keys = _segment_keys(baseline_report)

    if churn_levels is not None:
        axis = "churn"
    elif corruption_levels is not None:
        axis = "corruption"
    else:
        axis = "loss"
    study = DegradationStudy(as_ids=as_ids, seed=seed, axis=axis)
    if churn_levels is not None:
        for rate in churn_levels:
            churn = ChurnPlan.intensity(rate, seed=seed)
            report = (
                baseline_report
                if not churn.active
                else run(FaultPlan.none(), churn)
            )
            study.levels.append(
                _score_level(0.0, report, baseline_keys, churn=rate)
            )
    elif corruption_levels is not None:
        for rate in corruption_levels:
            plan = plan_for_corruption(rate)
            report = baseline_report if not plan.active else run(plan)
            study.levels.append(
                _score_level(0.0, report, baseline_keys, corruption=rate)
            )
    else:
        for loss in loss_levels:
            plan = plan_for_loss(loss)
            report = baseline_report if not plan.active else run(plan)
            study.levels.append(_score_level(loss, report, baseline_keys))
    return study


def render_degradation_table(study: DegradationStudy) -> str:
    """The degradation curves as a text table (one row per fault level)."""
    flags = [f for f in Flag]
    if study.axis == "corruption":
        header, subject = "Corruption", "corruption"
        intensity_of = lambda lvl: lvl.corruption  # noqa: E731
    elif study.axis == "churn":
        header, subject = "Churn", "churn intensity"
        intensity_of = lambda lvl: lvl.churn  # noqa: E731
    else:
        header, subject = "Loss", "probe loss"
        intensity_of = lambda lvl: lvl.probe_loss  # noqa: E731
    rows = []
    for level in study.levels:
        row: list[object] = [f"{intensity_of(level):.0%}"]
        for flag in flags:
            deg = level.per_flag[flag]
            row.append(f"{deg.recall:.2f}/{deg.precision:.2f}")
        row.append(level.cvr_false_positives)
        row.append(
            f"{level.confirmed_detected}/{level.confirmed_total}"
        )
        row.append(level.retries)
        row.append(level.quarantined)
        rows.append(tuple(row))
    return format_table(
        [header]
        + [f"{f.name} R/P" for f in flags]
        + ["CVR FPs", "Confirmed", "Retries", "Quarantined"],
        rows,
        title=(
            f"Degradation curves -- recall/precision per flag vs. "
            f"{subject} (seed {study.seed}, ASes {list(study.as_ids)})"
        ),
    )
