"""Table 1 -- default vendor SRGB/SRLB label ranges.

Regenerates the table from the vendor profiles and benchmarks the hot
path built on it: label-to-range matching, which AReST performs for
every labeled hop of the campaign.
"""

from repro.core.vendor_ranges import TABLE1_RANGES, label_in_vendor_range
from repro.fingerprint.records import Fingerprint
from repro.netsim.vendors import Vendor
from repro.util.tables import format_table

from benchmarks.conftest import emit

#: Table 1 of the paper, verbatim, as (range string, usage) rows.
_EXPECTED_ROWS = {
    ("16,000-23,999", "Cisco default SRGB"),
    ("15,000-15,999", "Cisco default SRLB"),
    ("16,000-47,999", "Huawei default SRGB"),
    ("48,000-63,999", "Huawei base SRLB"),
    ("900,000-965,535", "Arista default SRGB"),
    ("100,000-116,383", "Arista default SRLB"),
}


def _rows():
    rows = []
    for vendor, entries in TABLE1_RANGES.items():
        for label_range, kind in entries:
            rows.append(
                (
                    f"{label_range.low:,}-{label_range.high:,}",
                    f"{vendor.value} default {kind.upper()}"
                    if not (vendor is Vendor.HUAWEI and kind == "srlb")
                    else f"{vendor.value} base {kind.upper()}",
                )
            )
    return rows


def test_bench_table1(benchmark):
    rows = _rows()
    emit(
        format_table(
            ["Label Range", "Usage"],
            rows,
            title="Table 1 -- vendor SR label ranges",
        )
    )
    assert set(rows) == _EXPECTED_ROWS

    # Hot path: range matching across the whole 20-bit label space.
    cisco = Fingerprint.from_snmp(Vendor.CISCO)
    labels = list(range(0, 2**20, 257))

    def match_all() -> int:
        return sum(
            1 for label in labels if label_in_vendor_range(label, cisco)
        )

    hits = benchmark(match_all)
    # exactly the SRGB+SRLB fraction of the sampled space
    assert 0.005 < hits / len(labels) < 0.02
