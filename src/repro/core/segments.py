"""Detected SR-MPLS segment records.

"A segment, in this context, is a contiguous sequence of hops --
excluding the source router -- that has raised one of our detection
flags." (Sec. 4)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flags import Flag, SIGNAL_STRENGTH
from repro.netsim.addressing import IPv4Address


@dataclass(frozen=True, slots=True)
class DetectedSegment:
    """One flagged SR-MPLS segment inside one trace.

    ``hop_indices`` points into the trace's hop tuple; consecutive flags
    cover >= 2 hops, stack flags exactly one.
    """

    flag: Flag
    hop_indices: tuple[int, ...]
    addresses: tuple[IPv4Address, ...]
    #: top (active) label observed at each hop
    top_labels: tuple[int, ...]
    #: quoted stack depth at each hop
    stack_depths: tuple[int, ...]
    #: True when the consecutive run needed suffix matching (CVR/CO only)
    suffix_based: bool = False

    def __post_init__(self) -> None:
        lengths = {
            len(self.hop_indices),
            len(self.addresses),
            len(self.top_labels),
            len(self.stack_depths),
        }
        if len(lengths) != 1:
            raise ValueError("per-hop tuples must have equal lengths")
        if not self.hop_indices:
            raise ValueError("a segment needs at least one hop")
        if self.flag in (Flag.CVR, Flag.CO) and len(self.hop_indices) < 2:
            raise ValueError(f"{self.flag} segments need >= 2 hops")
        if self.flag in (Flag.LSVR, Flag.LVR, Flag.LSO) and len(
            self.hop_indices
        ) != 1:
            raise ValueError(f"{self.flag} segments are single-hop")
        if any(
            b - a != 1
            for a, b in zip(self.hop_indices, self.hop_indices[1:])
        ):
            raise ValueError("segment hops must be contiguous")

    @property
    def length(self) -> int:
        """Hops in this segment."""
        return len(self.hop_indices)

    @property
    def signal_strength(self) -> int:
        """The flag's star rating (Sec. 4)."""
        return SIGNAL_STRENGTH[self.flag]

    @property
    def max_stack_depth(self) -> int:
        """Deepest quoted stack inside the segment."""
        return max(self.stack_depths)

    def key(self) -> tuple:
        """Deduplication key: the same segment observed through several
        traces counts once (the paper reports *distinct* segments)."""
        return (self.flag, self.addresses, self.top_labels)
