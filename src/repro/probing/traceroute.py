"""Paris traceroute over the simulated data plane.

Sends TTL-increasing UDP probes with a *constant flow identifier* so
per-flow ECMP keeps the path stable (Augustin et al.), records the
responding address, RTT, reply TTL and any RFC 4950-quoted label stack.

RTTs are synthesized from hop counts with deterministic jitter -- enough
for TNT-style heuristics (RTT jumps at tunnel entrances) to have
something to look at without pretending to model queueing.
"""

from __future__ import annotations

from functools import lru_cache
from hashlib import sha256

from repro.netsim.addressing import IPv4Address
from repro.netsim.faults import FaultInjector
from repro.netsim.forwarding import ForwardingEngine, ProbeReply, ReplyKind
from repro.netsim.mpls import LabelStackEntry
from repro.netsim.walkcache import RecordedWalk
from repro.probing.records import QuotedLse, Trace, TraceHop
from repro.util.determinism import unit_hash
from repro.util.retry import RetryAccounting, RetryPolicy

#: per-hop one-way latency used to synthesize RTTs, in milliseconds
_HOP_LATENCY_MS = 0.42
_MAX_CONSECUTIVE_STARS = 4


@lru_cache(maxsize=1 << 16)
def derive_flow_id(vp_router_id: int, destination: IPv4Address) -> int:
    """The default Paris flow identifier: a stable hash of the tuple."""
    return int(unit_hash("flow", vp_router_id, destination) * 2**16)


@lru_cache(maxsize=1 << 16)
def _rtt_jitter(seed: int, flow_id: int, ttl: int) -> float:
    """The deterministic per-probe RTT jitter, in milliseconds.

    Bit-identical to ``unit_hash(seed, "rtt", flow_id, ttl) * 0.3`` but
    hashes the prebuilt key text directly (unit_hash pays more building
    its key string than the SHA-256 costs) and memoizes per flow: probe
    campaigns re-trace the same flows round after round.
    """
    digest = sha256(
        f"{seed}\x1frtt\x1f{flow_id}\x1f{ttl}".encode("utf-8")
    ).digest()
    return (int.from_bytes(digest[:8], "big") / 2**64) * 0.3


def _quote_scan(
    stack: tuple[LabelStackEntry, ...],
) -> tuple[QuotedLse, ...]:
    return tuple(
        QuotedLse(
            label=e.label,
            tc=e.tc,
            bottom_of_stack=e.bottom_of_stack,
            ttl=e.ttl,
        )
        for e in stack
    )


#: memoized conversion -- probes of different flows expiring at the same
#: tunnel position quote identical stacks
_quote_entries = lru_cache(maxsize=1 << 14)(_quote_scan)


@lru_cache(maxsize=1 << 14)
def quote_records(
    quote: tuple[tuple[int, int, bool, bool, int], ...], ttl: int
) -> tuple[QuotedLse, ...]:
    """Measurement records for a quote template at one probe TTL.

    Fuses :func:`repro.netsim.walkcache._materialize` with the
    LSE-to-record conversion: the synthesis path never needs the
    intermediate :class:`LabelStackEntry` tuple, only the records.
    """
    return tuple(
        QuotedLse(
            label=label,
            tc=tc,
            bottom_of_stack=bottom,
            ttl=ttl + value if relative else value,
        )
        for label, tc, bottom, relative, value in quote
    )


class ParisTraceroute:
    """A traceroute client bound to one forwarding engine."""

    def __init__(
        self,
        engine: ForwardingEngine,
        max_ttl: int = 40,
        seed: int = 0,
        retry: RetryPolicy | None = None,
        fast_path: bool = True,
    ) -> None:
        if max_ttl <= 0:
            raise ValueError("max_ttl must be positive")
        self._engine = engine
        self._max_ttl = max_ttl
        self._seed = seed
        self._retry = retry or RetryPolicy.none()
        self._fast_path = fast_path
        self.accounting = RetryAccounting()

    @property
    def retry(self) -> RetryPolicy:
        """The per-probe retry policy."""
        return self._retry

    @property
    def fast_path(self) -> bool:
        """True when traces are synthesized from recorded walks."""
        return self._fast_path

    @property
    def max_ttl(self) -> int:
        """The deepest TTL probed per trace."""
        return self._max_ttl

    @property
    def seed(self) -> int:
        """The RTT-jitter seed."""
        return self._seed

    def trace(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        vp_name: str = "",
        flow_id: int | None = None,
    ) -> Trace:
        """Run one traceroute; the flow id defaults to a stable hash of
        (vp, destination) as Paris traceroute derives it from the tuple."""
        trace, _ = self.trace_recorded(
            vp_router_id, destination, vp_name, flow_id
        )
        return trace

    def trace_recorded(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        vp_name: str = "",
        flow_id: int | None = None,
        prerecorded: RecordedWalk | None = None,
    ) -> tuple[Trace, RecordedWalk | None]:
        """Run one traceroute and also return the recorded walk of its
        primary flow (None when the fast path is disabled or the primary
        flow never probed).

        The walk carries the ground truth of the forward path, letting
        MPLS-aware callers (the TNT prober) skip a second full walk.
        ``prerecorded`` hands in a walk of the primary flow a caller
        already recorded, so a fused-path fallback never records twice.
        """
        if flow_id is None:
            flow_id = derive_flow_id(vp_router_id, destination)
        faults = self._engine.faults
        corrupting = faults is not None and faults.plan.corruption_active
        reroute = (
            faults.rerouted_flow(flow_id, destination, self._max_ttl)
            if corrupting
            else None
        )
        walks: dict[int, RecordedWalk] = {}
        if (
            prerecorded is not None
            and self._fast_path
            and prerecorded.src == vp_router_id
            and prerecorded.dest == destination
            and prerecorded.flow_id == flow_id
        ):
            walks[flow_id] = prerecorded

        def walk_for(flow: int) -> RecordedWalk | None:
            # One recording per probed flow; recording is fault-free and
            # consumes no injector state, so laziness is safe.  A
            # recording stamped with an older topology epoch is
            # re-recorded: the engine would refuse to synthesize from it
            # anyway, and re-recording restores O(1) synthesis for the
            # rest of the trace.
            if not self._fast_path:
                return None
            walk = walks.get(flow)
            if walk is None or walk.epoch != self._engine.epoch:
                walk = self._engine.record_walk(
                    vp_router_id, destination, flow
                )
                walks[flow] = walk
            return walk

        churning = self._engine.dynamics is not None
        # Epochs are stamped relative to the trace's start so the span
        # reflects only mutations observed mid-trace -- engine-internal
        # history (setup-time cache resets) must not leak into bytes.
        epoch_base = self._engine.epoch if churning else 0
        epoch_lo: int | None = None
        epoch_hi: int | None = None
        hops: list[TraceHop] = []
        reached = False
        stars = 0
        for ttl in range(1, self._max_ttl + 1):
            probe_flow = flow_id
            if reroute is not None and ttl >= reroute[0]:
                probe_flow = reroute[1]
            reply = self._probe_with_retries(
                vp_router_id, destination, ttl, probe_flow,
                walk_for(probe_flow),
            )
            if churning:
                # Stamp the epoch each probe was actually forwarded
                # under (read after the send: the probe's own clock tick
                # may have fired the mutation it observed).
                observed = self._engine.epoch - epoch_base
                if epoch_lo is None:
                    epoch_lo = epoch_hi = observed
                else:
                    epoch_hi = observed
            if reply is None:
                hops.append(TraceHop(probe_ttl=ttl, address=None))
                stars += 1
                if stars >= _MAX_CONSECUTIVE_STARS:
                    break
                continue
            stars = 0
            is_destination = reply.kind is not ReplyKind.TIME_EXCEEDED
            hop = self._hop_from_reply(ttl, reply, flow_id, is_destination)
            if corrupting:
                hop = self._corrupt_hop(
                    hop,
                    hops[-1].lses if hops else None,
                    faults,
                    flow_id,
                    destination,
                )
            hops.append(hop)
            if is_destination:
                reached = True
                break
        if corrupting:
            hops = self._corrupt_order(hops, faults, flow_id, destination)
        trace = Trace(
            vp=vp_name or f"vp{vp_router_id}",
            vp_router_id=vp_router_id,
            destination=destination,
            flow_id=flow_id,
            hops=tuple(hops),
            reached=reached,
            epoch_span=(
                (epoch_lo, epoch_hi) if epoch_lo is not None else None
            ),
        )
        return trace, walks.get(flow_id)

    def _probe_with_retries(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        ttl: int,
        flow_id: int,
        walk: RecordedWalk | None = None,
    ) -> ProbeReply | None:
        """Fire one probe, re-firing per the retry policy while silent.

        Each attempt redraws its loss fate in the fault injector (the
        ``attempt`` index keys the draw), so retries genuinely recover
        lost probes; a router that is ICMP-silent by configuration stays
        silent on every attempt, exactly as in the wild.
        """
        self.accounting.probes += 1
        reply = self._send(vp_router_id, destination, ttl, flow_id, 0, walk)
        attempt = 1
        while reply is None and attempt < self._retry.max_attempts:
            self.accounting.retries += 1
            self.accounting.backoff_ms += self._retry.backoff_ms(attempt)
            reply = self._send(
                vp_router_id, destination, ttl, flow_id, attempt, walk
            )
            attempt += 1
        if reply is None and self._retry.enabled:
            self.accounting.exhausted += 1
        return reply

    def _send(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        ttl: int,
        flow_id: int,
        attempt: int,
        walk: RecordedWalk | None,
    ) -> ProbeReply | None:
        if walk is not None:
            return self._engine.forward_probe_cached(walk, ttl, attempt)
        return self._engine.forward_probe(
            vp_router_id, destination, ttl, flow_id, attempt=attempt
        )

    def _hop_from_reply(
        self,
        ttl: int,
        reply: ProbeReply,
        flow_id: int,
        is_destination: bool = False,
    ) -> TraceHop:
        round_trip_hops = ttl + reply.truth_forward_hops
        if self._engine.memoize:
            jitter = _rtt_jitter(self._seed, flow_id, ttl)
        else:
            # pre-change cost model: every draw pays a fresh SHA-256
            # (bit-identical to unit_hash)
            text = f"{self._seed}\x1frtt\x1f{flow_id}\x1f{ttl}"
            jitter = (
                int.from_bytes(
                    sha256(text.encode("utf-8")).digest()[:8], "big"
                )
                / 2**64
            ) * 0.3
        rtt = round_trip_hops * _HOP_LATENCY_MS + jitter
        if reply.quoted_stack is None:
            lses = None
        elif self._engine.memoize:
            lses = _quote_entries(reply.quoted_stack)
        else:
            # pre-change cost model: records rebuilt per reply
            lses = _quote_scan(reply.quoted_stack)
        return TraceHop(
            probe_ttl=ttl,
            address=reply.source_ip,
            rtt_ms=round(rtt, 3),
            reply_ip_ttl=reply.reply_ip_ttl,
            lses=lses,
            destination_reply=is_destination,
            truth_router_id=reply.truth_router_id,
        )

    # -- corruption application (decisions live in the fault injector) -----------

    @staticmethod
    def _corrupt_hop(
        hop: TraceHop,
        prev_lses: tuple[QuotedLse, ...] | None,
        faults: FaultInjector,
        flow_id: int,
        destination: IPv4Address,
    ) -> TraceHop:
        """Apply per-hop corruption faults to one recorded reply.

        Decisions are keyed on ``(flow, destination, probe TTL)`` so the
        schedule is independent of call order; only applicable faults
        draw, keeping counters equal to applied corruptions.
        """
        ttl = hop.probe_ttl
        if prev_lses and faults.stale_replayed(flow_id, destination, ttl):
            hop = hop.with_annotation(lses=prev_lses)
        if hop.lses and faults.stack_suppressed(flow_id, destination, ttl):
            hop = hop.with_annotation(lses=None)
        if (
            hop.lses
            and len(hop.lses) > 1
            and faults.stack_truncated(flow_id, destination, ttl)
        ):
            # the kept top entry retains bottom_of_stack=False: exactly
            # the structural wound the sanitizer detects and repairs
            hop = hop.with_annotation(lses=(hop.lses[0],))
        if hop.lses:
            garbled = faults.garbled_label(
                flow_id, destination, ttl, hop.lses[0].label
            )
            if garbled is not None:
                top = hop.lses[0]
                hop = hop.with_annotation(
                    lses=(
                        QuotedLse(
                            label=garbled,
                            tc=top.tc,
                            bottom_of_stack=top.bottom_of_stack,
                            ttl=top.ttl,
                        ),
                    )
                    + hop.lses[1:]
                )
        if hop.reply_ip_ttl is not None:
            delta = faults.ttl_perturbation(flow_id, destination, ttl)
            if delta:
                hop = hop.with_annotation(
                    reply_ip_ttl=hop.reply_ip_ttl + delta
                )
        if hop.responded:
            spoofed = faults.spoofed_source(flow_id, destination, ttl)
            if spoofed is not None:
                hop = hop.with_annotation(
                    address=IPv4Address(spoofed), truth_router_id=None
                )
        return hop

    @staticmethod
    def _corrupt_order(
        hops: list[TraceHop],
        faults: FaultInjector,
        flow_id: int,
        destination: IPv4Address,
    ) -> list[TraceHop]:
        """Duplicate and reorder recorded hops per the fault plan."""
        duplicated: list[TraceHop] = []
        for hop in hops:
            duplicated.append(hop)
            if faults.hop_duplicated(flow_id, destination, hop.probe_ttl):
                duplicated.append(hop)
        i = 0
        while i < len(duplicated) - 1:
            if faults.hops_swapped(flow_id, destination, i):
                duplicated[i], duplicated[i + 1] = (
                    duplicated[i + 1],
                    duplicated[i],
                )
                i += 2
            else:
                i += 1
        return duplicated
