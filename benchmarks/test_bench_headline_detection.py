"""Sec. 6.2 headline -- AReST detection rates over the portfolio.

The paper: SR-MPLS detected in 75% of the analyzed ASes that claimed to
deploy it (with 60% of those detections led by the strongest flags),
and evidence found in 94% of the unconfirmed ASes -- about a third of
which are >= 90% LSO-dominated and therefore read conservatively.
"""

from repro.analysis.validation import headline_detection
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_headline_detection(benchmark, portfolio_results):
    headline = benchmark(lambda: headline_detection(portfolio_results))

    # Precision guarantee across the *whole* portfolio: no strong flag
    # ever fires on traditional MPLS (the property AS#46's operator
    # confirmed, here checked against simulator ground truth everywhere).
    from repro.analysis.validation import validate_against_truth
    from repro.core.flags import STRONG_FLAGS

    strong_fps = sum(
        validate_against_truth(result).per_flag[flag].false_positives
        for result in portfolio_results.values()
        for flag in STRONG_FLAGS
    )
    emit(f"strong-flag false positives across 41 ASes: {strong_fps}")
    assert strong_fps == 0
    emit(
        format_table(
            ["Metric", "Value", "Paper"],
            [
                (
                    "confirmed ASes detected",
                    f"{headline.confirmed_detected}/"
                    f"{headline.confirmed_total} "
                    f"({headline.confirmed_rate:.0%})",
                    "75%",
                ),
                (
                    "of which strong-flag led",
                    f"{headline.strong_share_of_detected:.0%}",
                    "60%",
                ),
                (
                    "unconfirmed ASes with evidence",
                    f"{headline.unconfirmed_detected}/"
                    f"{headline.unconfirmed_total} "
                    f"({headline.unconfirmed_rate:.0%})",
                    "94%",
                ),
                (
                    "LSO-dominated among those",
                    f"{headline.unconfirmed_lso_dominated}",
                    "~1/3",
                ),
            ],
            title="Sec. 6.2 -- headline detection",
        )
    )

    # Shape: both rates land near the paper's, with the confirmed rate
    # below 100% for exactly the visibility reasons the paper gives.
    assert 0.6 <= headline.confirmed_rate <= 0.9
    assert headline.unconfirmed_rate >= 0.8
    assert headline.strong_share_of_detected >= 0.5
    assert headline.unconfirmed_lso_dominated >= 1
