"""Always-on streaming detection service.

The batch pipeline answers "what does this dataset contain"; this
package answers the same question *continuously*: traces stream in over
HTTP, a bounded queue applies backpressure, workers fold each trace
through the exact sanitize → detect projection the batch path uses, and
a crash-safe journal + snapshot store makes every acknowledged trace
durable.  ``GET /segments`` is byte-identical to ``arest detect
--segments-json`` over the same traces, in any arrival order.

Modules:

- :mod:`~repro.service.wire` -- request/response schemas + the one
  canonical JSON serializer;
- :mod:`~repro.service.state` -- order-independent aggregate and the
  durable journal/snapshot store;
- :mod:`~repro.service.ingest` -- bounded queue, watermark hysteresis,
  per-submitter fairness;
- :mod:`~repro.service.workers` -- queue consumers with deadlines and
  poison containment;
- :mod:`~repro.service.server` -- the asyncio HTTP front-end and the
  two-strike drain lifecycle.
"""

from repro.service.ingest import Admission, IngestQueue
from repro.service.server import (
    EXIT_BIND_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    ArestService,
    ServiceConfig,
    exit_code_for,
    run_service,
)
from repro.service.state import (
    RecoveryInfo,
    SegmentAggregate,
    ServiceState,
    StateMismatchError,
    analyze_trace,
    batch_aggregate,
)
from repro.service.wire import (
    DecodedBody,
    WireRejection,
    canonical_json,
    decode_body,
    decode_trace_line,
)
from repro.service.workers import WorkerPool

__all__ = [
    "Admission",
    "ArestService",
    "DecodedBody",
    "EXIT_BIND_FAILURE",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "IngestQueue",
    "RecoveryInfo",
    "SegmentAggregate",
    "ServiceConfig",
    "ServiceState",
    "StateMismatchError",
    "WireRejection",
    "WorkerPool",
    "analyze_trace",
    "batch_aggregate",
    "canonical_json",
    "decode_body",
    "decode_trace_line",
    "exit_code_for",
    "run_service",
]
