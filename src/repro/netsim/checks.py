"""Network configuration linting.

Topology generation composes many hand-tuned pieces (deployment
scenarios, control planes, tunnel policies); this linter catches the
inconsistencies that would otherwise surface as baffling forwarding
behaviour three layers up: SR flags without an SR domain, isolated
routers, prefixes announced from unreachable PEs, disconnected graphs.
"""

from __future__ import annotations

import networkx as nx

from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController


class NetworkConfigError(Exception):
    """Raised by :func:`assert_valid` when the lint finds issues."""

    def __init__(self, issues: list[str]) -> None:
        super().__init__("; ".join(issues))
        self.issues = issues


def lint_network(
    network: Network, controller: TunnelController | None = None
) -> list[str]:
    """Return every configuration issue found (empty = clean)."""
    issues: list[str] = []
    issues.extend(_lint_connectivity(network))
    issues.extend(_lint_routers(network, controller))
    issues.extend(_lint_prefixes(network))
    return issues


def assert_valid(
    network: Network, controller: TunnelController | None = None
) -> None:
    """Raise :class:`NetworkConfigError` when the lint finds issues."""
    issues = lint_network(network, controller)
    if issues:
        raise NetworkConfigError(issues)


def _lint_connectivity(network: Network) -> list[str]:
    issues = []
    if network.num_routers == 0:
        return ["network has no routers"]
    graph = network.to_graph()
    if network.num_routers > 1 and not nx.is_connected(graph):
        components = nx.number_connected_components(graph)
        issues.append(
            f"network is disconnected ({components} components)"
        )
    for router in network.routers():
        if not router.interfaces:
            issues.append(f"router {router.name} has no links")
    return issues


def _lint_routers(
    network: Network, controller: TunnelController | None
) -> list[str]:
    issues = []
    for router in network.routers():
        if router.role is RouterRole.VANTAGE and (
            router.sr_enabled or router.ldp_enabled
        ):
            issues.append(
                f"vantage point {router.name} must not run MPLS"
            )
        if not 0.0 <= router.icmp_response_rate <= 1.0:
            issues.append(
                f"router {router.name} has icmp_response_rate "
                f"{router.icmp_response_rate} outside [0, 1]"
            )
        if controller is not None and router.sr_enabled:
            domain = controller.sr_domain(router.asn)
            if domain is None:
                issues.append(
                    f"router {router.name} is sr_enabled but AS"
                    f"{router.asn} has no SR domain"
                )
            elif not domain.is_enrolled(router.router_id):
                issues.append(
                    f"router {router.name} is sr_enabled but not "
                    f"enrolled in AS{router.asn}'s domain"
                )
    return issues


def _lint_prefixes(network: Network) -> list[str]:
    issues = []
    seen: set[tuple[int, int]] = set()
    for prefix, rid in network.announced_prefixes():
        key = (prefix.network.value, prefix.length)
        if key in seen:
            issues.append(f"prefix {prefix} announced twice")
        seen.add(key)
        router = network.router(rid)
        if not router.interfaces:
            issues.append(
                f"prefix {prefix} announced by isolated router "
                f"{router.name}"
            )
    return issues
