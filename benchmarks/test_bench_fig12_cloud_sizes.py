"""Fig. 12 -- LDP vs. SR cloud sizes inside interworking tunnels.

The paper: "LDP clouds tend to be smaller, whereas SR clouds are
typically larger ... smaller LDP islands are being interconnected by
larger Segment Routing clouds."
"""

import statistics

from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig12_cloud_sizes(benchmark, portfolio_results):
    def collect():
        sr, ldp = [], []
        for result in portfolio_results.values():
            sr.extend(result.analysis.sr_cloud_sizes)
            ldp.extend(result.analysis.ldp_cloud_sizes)
        return sr, ldp

    sr_sizes, ldp_sizes = benchmark(collect)
    assert sr_sizes and ldp_sizes

    def distribution(sizes):
        counts = {}
        for size in sizes:
            counts[size] = counts.get(size, 0) + 1
        total = len(sizes)
        return {size: counts[size] / total for size in sorted(counts)}

    sr_dist = distribution(sr_sizes)
    ldp_dist = distribution(ldp_sizes)
    all_sizes = sorted(set(sr_dist) | set(ldp_dist))
    emit(
        format_table(
            ["Cloud size", "SR share", "LDP share"],
            [
                (
                    size,
                    f"{sr_dist.get(size, 0.0):.2f}",
                    f"{ldp_dist.get(size, 0.0):.2f}",
                )
                for size in all_sizes
            ],
            title="Fig. 12 -- cloud size distributions",
        )
    )
    sr_mean = statistics.mean(sr_sizes)
    ldp_mean = statistics.mean(ldp_sizes)
    emit(f"mean cloud size: SR={sr_mean:.2f}  LDP={ldp_mean:.2f}")

    # Shape: SR clouds larger than LDP clouds, in mean and median.
    assert sr_mean > ldp_mean
    assert statistics.median(sr_sizes) >= statistics.median(ldp_sizes)
