"""Performance -- AReST post-processing throughput.

"AReST is lightweight as it relies only on traceroute-like data" (Sec.
9).  The paper post-processed 7.7M traceroutes; this benchmark measures
the detector's single-core throughput on realistic traces so a reader
can estimate wall-clock for campaigns of any size.
"""

from repro.core.detector import ArestDetector
from repro.probing.tnt import TntProber

from benchmarks.conftest import emit


def _trace_corpus(portfolio_results, copies: int = 3):
    traces = []
    for result in portfolio_results.values():
        traces.extend(result.dataset.traces)
    return traces * copies


def test_bench_detector_throughput(benchmark, portfolio_results):
    corpus = _trace_corpus(portfolio_results)

    detector = ArestDetector()

    def detect_all() -> int:
        segments = 0
        for trace in corpus:
            segments += len(detector.detect(trace, {}))
        return segments

    segments = benchmark(detect_all)
    per_trace_us = benchmark.stats["mean"] / len(corpus) * 1e6
    emit(
        f"post-processed {len(corpus):,} traces -> {segments:,} segment "
        f"occurrences; {per_trace_us:.1f} us/trace "
        f"(~{1e6 / per_trace_us * 3600 / 1e6:.0f}M traces/hour/core)"
    )

    assert segments > 0
    # "lightweight": the paper's 7.7M-trace campaign must post-process
    # in minutes on one core, i.e. well under 1 ms per trace.
    assert benchmark.stats["mean"] / len(corpus) < 1e-3
