"""Tests for TTL-based fingerprinting."""

import pytest

from repro.fingerprint.records import FingerprintMethod
from repro.fingerprint.ttl import TtlFingerprinter, infer_initial_ttl
from repro.netsim.vendors import Vendor

from tests.conftest import ChainNetwork


class TestInferInitialTtl:
    @pytest.mark.parametrize(
        "observed,expected",
        [(1, 32), (32, 32), (33, 64), (64, 64), (65, 128), (128, 128),
         (129, 255), (254, 255), (255, 255)],
    )
    def test_rounding(self, observed, expected):
        assert infer_initial_ttl(observed) == expected

    def test_implausible(self):
        assert infer_initial_ttl(0) is None
        assert infer_initial_ttl(256) is None
        assert infer_initial_ttl(-3) is None


class TestTtlFingerprinter:
    def _first_hop(self, chain: ChainNetwork):
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 1
        )
        assert reply is not None
        return reply

    def test_cisco_yields_cisco_huawei_class(self):
        chain = ChainNetwork(vendor=Vendor.CISCO)
        reply = self._first_hop(chain)
        fp = TtlFingerprinter(chain.engine).fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        assert fp.method is FingerprintMethod.TTL
        assert fp.vendor_class == frozenset({Vendor.CISCO, Vendor.HUAWEI})

    def test_juniper_distinct_class(self):
        chain = ChainNetwork(vendor=Vendor.JUNIPER)
        reply = self._first_hop(chain)
        fp = TtlFingerprinter(chain.engine).fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        assert fp.identified
        assert Vendor.CISCO not in fp.vendor_class

    def test_needs_time_exceeded_half(self):
        chain = ChainNetwork()
        reply = self._first_hop(chain)
        fp = TtlFingerprinter(chain.engine).fingerprint(
            reply.source_ip, None, chain.vp.router_id
        )
        assert not fp.identified

    def test_needs_echo_half(self):
        chain = ChainNetwork()
        chain.routers[0].responds_to_ping = False
        reply = self._first_hop(chain)
        fp = TtlFingerprinter(chain.engine).fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        assert not fp.identified

    def test_unknown_vendor_not_identified(self):
        chain = ChainNetwork(vendor=Vendor.UNKNOWN)
        reply = self._first_hop(chain)
        fp = TtlFingerprinter(chain.engine).fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        # UNKNOWN replies with the generic 64/64 signature, which maps to
        # the {Arista, MikroTik, Linux}-style class -- still a class hit,
        # but never a Cisco/Huawei one.
        assert Vendor.CISCO not in fp.vendor_class
