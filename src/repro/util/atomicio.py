"""Crash-safe file writes: tmp file + fsync + atomic rename.

Campaign artifacts (trace datasets, checkpoints, markdown reports) must
survive a ``kill -9`` delivered at any instant: a reader must always
find either the complete old file or the complete new one, never a torn
or half-flushed hybrid.  POSIX gives exactly one primitive with that
guarantee -- ``rename(2)`` within a filesystem -- so every whole-file
write goes through :func:`atomic_writer`:

1. write to a uniquely-named temporary file *in the target directory*
   (same filesystem, so the rename cannot degrade to copy+delete);
2. flush and ``fsync`` the temporary file (data is on stable storage
   before the name flips);
3. ``os.replace`` it over the target (atomic on POSIX and Windows);
4. ``fsync`` the directory so the new name itself is durable.

Append-mode artifacts (the JSONL checkpoint) cannot be renamed into
place line by line; :func:`durable_append` instead flushes and fsyncs
after the write, bounding a crash's damage to a truncated final line --
which the checkpoint loader already salvages.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


def fsync_directory(path: Path) -> None:
    """Flush a directory's metadata so renames within it are durable.

    Best-effort: some platforms/filesystems refuse ``open(2)`` on
    directories; losing the directory sync there degrades durability,
    not atomicity.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(
    path: str | Path, encoding: str = "utf-8"
) -> Iterator[IO[str]]:
    """Context manager yielding a handle whose contents replace ``path``
    atomically on successful exit.

    On any exception the temporary file is removed and the target is
    left untouched.  A crash (even ``SIGKILL``) at any point leaves
    either the old file or the new file, never a mixture.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    fh = tmp.open("w", encoding=encoding)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
    except BaseException:
        fh.close()
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path``'s contents with ``text``."""
    with atomic_writer(path, encoding=encoding) as fh:
        fh.write(text)


def durable_append(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Append ``text`` and fsync before returning.

    Not atomic -- a crash mid-call can leave a partial tail -- but once
    this returns the bytes are on stable storage, and the damage window
    is bounded to the single in-flight append.
    """
    with Path(path).open("a", encoding=encoding) as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
