"""Sec. 4.1 applied -- segment lengths and the coincidence budget.

Prices every CVR/CO run the campaign flagged with the paper's
1/N^(k-1) model: the expected number of pure-luck runs across the whole
portfolio must be (and is) negligible -- the quantitative backing for
the five-star rating.
"""

from repro.analysis.segment_stats import (
    portfolio_expected_false_positives,
    segment_length_rows,
)
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_segment_lengths(benchmark, portfolio_results):
    rows = benchmark(lambda: segment_length_rows(portfolio_results))

    table = [
        (
            f"AS#{r.as_id}",
            r.name,
            r.total(),
            f"{r.mean_length():.2f}",
            r.max_length(),
            f"{r.expected_false_positives():.2e}",
        )
        for r in rows
        if r.total() > 0
    ]
    emit(
        format_table(
            ["AS", "Name", "runs", "mean len", "max len", "E[FP]"],
            table,
            title="Consecutive-run lengths and coincidence budget",
        )
    )
    budget = portfolio_expected_false_positives(rows)
    emit(f"portfolio-wide expected coincidence runs: {budget:.2e}")

    populated = [r for r in rows if r.total() > 0]
    assert populated
    # every run is >= 2 hops and most ASes average well above the
    # minimum (label runs span the core)
    assert all(r.mean_length() >= 2.0 for r in populated)
    assert max(r.max_length() for r in populated) >= 4
    # the paper's argument, priced on real observations: the chance any
    # flagged run in the whole campaign is a coincidence is ~1e-4 or less
    assert budget < 1e-2
