"""The in-process recorders: spans, counters, and the null object."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    merge_counters,
)

from tests.conftest import scaled_examples


class FakeClock:
    """Deterministic monotonic clock: advances by a fixed tick per read."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


class TestTelemetry:
    def test_span_records_duration_and_stage(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("probe"):
            pass
        assert tel.spans == [
            {"stage": "probe", "path": "probe", "seconds": 1.0}
        ]

    def test_nested_spans_build_hierarchical_paths(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("as", as_id=46):
            with tel.span("analyze"):
                with tel.span("detect"):
                    pass
        paths = [record["path"] for record in tel.spans]
        # inner spans close (and record) first
        assert paths == ["as/analyze/detect", "as/analyze", "as"]
        assert tel.spans[-1]["as_id"] == 46

    def test_span_records_even_when_body_raises(self):
        tel = Telemetry(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tel.span("probe"):
                raise RuntimeError("boom")
        assert [record["stage"] for record in tel.spans] == ["probe"]
        # the stack unwound: a later span is not nested under the dead one
        with tel.span("analyze"):
            pass
        assert tel.spans[-1]["path"] == "analyze"

    def test_add_seconds_respects_open_span_path(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("as"):
            tel.add_seconds("sanitize", 0.25)
        assert tel.spans[0] == {
            "stage": "sanitize",
            "path": "as/sanitize",
            "seconds": 0.25,
        }

    def test_counters_accumulate_and_skip_zero(self):
        tel = Telemetry()
        tel.count("traces", 3)
        tel.count("traces", 2)
        tel.count("noise", 0)
        assert tel.counters == {"traces": 5}

    def test_gauge_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("queue_depth", 3)
        tel.gauge("queue_depth", 1)
        assert tel.gauges == {"queue_depth": 1}

    def test_export_is_a_detached_snapshot(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("probe"):
            tel.count("probes", 7)
        export = tel.export()
        tel.count("probes", 1)
        assert export["counters"] == {"probes": 7}
        assert export["spans"][0]["stage"] == "probe"
        # mutating the export must not reach back into the recorder
        export["spans"][0]["stage"] = "mangled"
        assert tel.spans[0]["stage"] == "probe"


class TestNullTelemetry:
    def test_is_disabled_and_inert(self):
        tel = NullTelemetry()
        assert tel.enabled is False
        with tel.span("anything", attr=1):
            tel.count("x")
            tel.gauge("y", 2.0)
            tel.add_seconds("z", 1.0)
        assert tel.export() == {"spans": [], "counters": {}, "gauges": {}}

    def test_shared_instance_is_stateless(self):
        NULL_TELEMETRY.count("x", 100)
        assert NULL_TELEMETRY.export()["counters"] == {}

    def test_clock_is_usable(self):
        # hot loops may read the clock through either implementation
        assert isinstance(NULL_TELEMETRY.clock(), float)


_counter_dicts = st.lists(
    st.dictionaries(
        st.sampled_from(("traces", "probes", "flags_cvr", "faults")),
        st.integers(min_value=0, max_value=10_000),
        max_size=4,
    ),
    max_size=5,
)


class TestMergeCounters:
    def test_merges_in_place_and_returns(self):
        into = {"a": 1}
        out = merge_counters(into, {"a": 2, "b": 3})
        assert out is into
        assert into == {"a": 3, "b": 3}

    @settings(max_examples=scaled_examples(50), deadline=None)
    @given(parts=_counter_dicts)
    def test_aggregation_is_order_independent(self, parts):
        """Satellite property: any merge order yields identical totals.

        This is the mechanism that makes serial, parallel, and resumed
        campaign counter totals agree -- completion order varies, the
        sum does not.  Exhaustively checks every permutation for small
        lists (n! <= 120 here).
        """
        reference = None
        for permutation in itertools.permutations(parts):
            totals: dict[str, int] = {}
            for part in permutation:
                merge_counters(totals, part)
            if reference is None:
                reference = totals
            assert totals == reference
