"""Tests for tunnel program construction (ingress label stacks)."""

import pytest

from repro.netsim.tunnels import ServiceSidRegistry, TunnelPolicy
from repro.netsim.vendors import VENDOR_PROFILES, Vendor

from tests.conftest import TARGET_ASN, ChainNetwork


class TestPlainSrPrograms:
    def test_single_node_sid(self, sr_chain):
        ingress = sr_chain.routers[0].router_id
        final = sr_chain.egress.router_id
        program = sr_chain.controller.program_for(ingress, final)
        assert program is not None
        assert program.egress == final
        assert program.depth == 1
        assert program.truth_planes == ("sr",)
        index = sr_chain.sr_domain.node_index(final)
        assert program.labels[0] == 16_000 + index

    def test_program_cached(self, sr_chain):
        ingress = sr_chain.routers[0].router_id
        final = sr_chain.egress.router_id
        assert sr_chain.controller.program_for(
            ingress, final
        ) is sr_chain.controller.program_for(ingress, final)

    def test_no_program_at_egress(self, sr_chain):
        final = sr_chain.egress.router_id
        assert sr_chain.controller.program_for(final, final) is None

    def test_no_program_without_ler(self):
        chain = ChainNetwork(sr=False, ldp=False)
        ingress = chain.routers[0].router_id
        assert (
            chain.controller.program_for(ingress, chain.egress.router_id)
            is None
        )

    def test_one_hop_php_no_push(self, sr_chain):
        # Penultimate router: downstream IS the egress; PHP leaves
        # nothing on the wire.
        penultimate = sr_chain.routers[-2].router_id
        assert (
            sr_chain.controller.program_for(
                penultimate, sr_chain.egress.router_id
            )
            is None
        )


class TestLdpPrograms:
    def test_ldp_label_is_downstream_binding(self, ldp_chain):
        ingress = ldp_chain.routers[0].router_id
        final = ldp_chain.egress.router_id
        program = ldp_chain.controller.program_for(ingress, final)
        assert program is not None
        assert program.truth_planes == ("ldp",)
        fec = ldp_chain.controller.egress_fec(final)
        nh = ldp_chain.igp.next_hop(ingress, final)
        assert program.labels[0] == ldp_chain.ldp.binding(nh, fec)

    def test_ldp_one_hop_implicit_null_no_push(self, ldp_chain):
        penultimate = ldp_chain.routers[-2].router_id
        assert (
            ldp_chain.controller.program_for(
                penultimate, ldp_chain.egress.router_id
            )
            is None
        )


class TestTePrograms:
    def test_te_stack_shape(self):
        chain = ChainNetwork(
            length=7,
            policy=TunnelPolicy(asn=TARGET_ASN, te_waypoint_share=1.0),
        )
        ingress = chain.routers[0].router_id
        program = chain.controller.program_for(
            ingress, chain.egress.router_id
        )
        assert program is not None
        # [node SID of waypoint; adjacency SID; node SID of egress]
        assert program.depth == 3
        assert program.truth_planes == ("sr", "sr", "sr")

    def test_te_falls_back_to_plain_when_impossible(self):
        chain = ChainNetwork(
            length=2,
            policy=TunnelPolicy(asn=TARGET_ASN, te_waypoint_share=1.0),
        )
        ingress = chain.routers[0].router_id
        program = chain.controller.program_for(
            ingress, chain.egress.router_id
        )
        # length 2: ingress's next hop IS the egress -> PHP, no program
        assert program is None


class TestServicePrograms:
    def test_service_labels_at_bottom(self):
        chain = ChainNetwork(
            policy=TunnelPolicy(
                asn=TARGET_ASN, service_sid_share=1.0, second_service_share=0.0
            ),
        )
        ingress = chain.routers[0].router_id
        program = chain.controller.program_for(
            ingress, chain.egress.router_id
        )
        assert program is not None
        assert program.depth == 2
        # the chain's egress is SR-enabled: its services are SR SIDs
        assert program.truth_planes[-1] == "service-sr"
        assert chain.controller.services.is_service_label(
            chain.egress.router_id, program.labels[-1]
        )

    def test_second_service_label(self):
        chain = ChainNetwork(
            policy=TunnelPolicy(
                asn=TARGET_ASN, service_sid_share=1.0, second_service_share=1.0
            ),
        )
        program = chain.controller.program_for(
            chain.routers[0].router_id, chain.egress.router_id
        )
        assert program is not None
        assert program.truth_planes[-2:] == ("service-sr", "service-sr")


class TestServiceSidRegistry:
    def test_allocation_stable(self, sr_chain):
        registry = ServiceSidRegistry(sr_chain.network)
        rid = sr_chain.egress.router_id
        assert registry.allocate(rid) == registry.allocate(rid)

    def test_slots_distinct(self, sr_chain):
        registry = ServiceSidRegistry(sr_chain.network)
        rid = sr_chain.egress.router_id
        assert registry.allocate(rid, 0) != registry.allocate(rid, 1)

    def test_ownership(self, sr_chain):
        registry = ServiceSidRegistry(sr_chain.network)
        rid = sr_chain.egress.router_id
        other = sr_chain.routers[0].router_id
        label = registry.allocate(rid)
        assert registry.is_service_label(rid, label)
        assert not registry.is_service_label(other, label)

    def test_cisco_service_labels_in_srlb(self, sr_chain):
        registry = ServiceSidRegistry(sr_chain.network)
        label = registry.allocate(sr_chain.egress.router_id)
        assert label in VENDOR_PROFILES[Vendor.CISCO].default_srlb


class TestAsEgress:
    def test_egress_is_last_in_as(self, sr_chain):
        ingress = sr_chain.routers[0].router_id
        final = sr_chain.egress.router_id
        assert sr_chain.controller.as_egress(ingress, final) == final

    def test_policy_auto_created(self, sr_chain):
        policy = sr_chain.controller.policy(99_999)
        assert policy.asn == 99_999
        assert policy.te_waypoint_share == 0.0
