"""Single-walk trace synthesis: the forwarding fast path.

A Paris traceroute fires one probe per TTL toward the same
``(vp, destination, flow)`` tuple, and every probe re-walks the same
forward path -- a depth-*h* trace costs O(h^2) hop-processing steps on
the reference walker.  But the path a probe takes is independent of its
TTL: forwarding decisions (IGP next hops, label operations, policy
splices) never read the TTL; the TTL only selects *where the probe
expires*.  So one instrumented walk can record, per expiry checkpoint,
everything needed to synthesize the reply for **every** probe TTL, and
:meth:`~repro.netsim.forwarding.ForwardingEngine.forward_probe_cached`
answers each probe in O(1) from the recording.

Symbolic TTLs
-------------

The recording walk runs the *unmodified* reference engine once with the
initial IP TTL replaced by a :class:`SymTtl` -- an ``int`` subclass that
remembers whether a value derives from the probe's initial TTL
(``probe=True``, propagated through decrements, pushes and pops) or is a
pipe-mode constant (the 255 a non-propagating ingress writes into its
LSEs).  At each of the engine's four TTL-expiry checkpoints the recorder
observes the symbolic value under test:

- probe-derived ``255 - d``: a probe sent with TTL ``d + 1`` expires
  exactly here.  The probe-derived chain is decremented only at
  checkpoints, so the offsets ``d`` are consecutive (0, 1, 2, ...) and
  the TTL -> checkpoint map is a plain dict.
- constant ``255 - k``: no probe (with sane TTL) ever expires here --
  the hop sits inside a pipe-mode tunnel and is invisible.

Each checkpoint precomputes the TTL-independent reply ingredients once
(responder, ICMP-silent flag, the per-flow response-rate draw, source
address, reply IP TTL) plus a *quote template* whose per-entry LSE-TTLs
are materialized per probe TTL -- that is how a probe expiring two hops
into a uniform tunnel quotes ``LSE-TTL 1`` while the next probe quotes
``2``, from one recording.

Faults stay per-probe
---------------------

The recording itself is fault-free and advances no fault clock.  Every
per-probe draw -- loss, blackout windows along the visited prefix, the
ICMP token bucket at the responder -- is replayed by
``forward_probe_cached`` in exactly the reference call order, so fault
schedules, counters and retry semantics are bit-identical.

Fallback
--------

Whenever exactness cannot be guaranteed -- the recording walk itself
expired (a path deeper than the recording TTL), checkpoint offsets came
out non-contiguous, the walk raised outside the modelled drop reasons,
or a probe TTL at or beyond the recording base is requested -- the
recording is marked not-:attr:`~RecordedWalk.ok` and the engine falls
back to the reference walker for every probe of that flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.netsim.addressing import IPv4Address
from repro.netsim.mpls import LabelStack, LabelStackEntry
from repro.util.determinism import unit_hash

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.netsim.forwarding import ForwardingEngine, ProbeReply, TruthHop

#: Initial TTL of the recording walk.  Mirrors ``truth_walk``'s 255 --
#: the largest value that survives a uniform-mode push into an 8-bit
#: LSE-TTL.  Probes with TTL >= this base cannot be synthesized exactly
#: and fall back to the reference walker.
RECORD_TTL = 255


class SymTtl(int):
    """An int TTL that remembers whether it derives from the probe TTL.

    Subtraction (the only arithmetic the forwarding plane performs on
    TTLs) preserves the provenance flag; comparisons and range checks
    behave like the plain int they wrap, so the reference engine runs
    unchanged over symbolic values.
    """

    probe: bool

    def __new__(cls, value: int, probe: bool = False) -> "SymTtl":
        self = super().__new__(cls, value)
        self.probe = probe
        return self

    def __sub__(self, other: int) -> "SymTtl":
        value = int(self) - int(other)
        if self.probe and 0 <= value < 256:
            # decrements dominate; probe-chain values are pooled (the
            # instances are immutable, so sharing across walks is safe)
            return _PROBE_TTL_POOL[value]
        return SymTtl(value, self.probe)

    def __add__(self, other: int) -> "SymTtl":
        return SymTtl(int(self) + int(other), self.probe)


_PROBE_TTL_POOL = tuple(SymTtl(value, True) for value in range(256))


#: One LSE of a quote template: ``(label, tc, bottom_of_stack,
#: probe_relative, ttl_value)``.  ``ttl_value`` is the concrete LSE-TTL,
#: or -- when ``probe_relative`` -- the delta added to the probe TTL.
#: Plain tuples, not dataclasses: one is built per LSE per recorded
#: checkpoint, squarely on the recording hot path.
QuoteTemplate = tuple[tuple[int, int, bool, bool, int], ...]


@lru_cache(maxsize=1 << 14)
def _materialize(quote: QuoteTemplate, ttl: int) -> tuple[LabelStackEntry, ...]:
    """The concrete quoted stack for a probe sent with ``ttl``.

    Memoized: probes of different flows expiring at the same position of
    the same tunnel materialize the same stack over and over.
    """
    return tuple(
        LabelStackEntry(
            label=label,
            tc=tc,
            bottom_of_stack=bottom,
            ttl=ttl + value if relative else value,
        )
        for label, tc, bottom, relative, value in quote
    )


@dataclass(frozen=True, slots=True)
class WalkEvent:
    """One TTL-expiry checkpoint of the recorded walk.

    Everything TTL-independent about the would-be ICMP reply is
    precomputed here; only the quoted LSE-TTLs (and the per-probe fault
    draws, which live outside) vary per probe.
    """

    #: router at which the probe expires
    node: int
    #: how many blackout checkpoints the probe passes, this node included
    visit_index: int
    #: the responder never answers (``icmp_silent`` configuration)
    silent: bool
    #: the per-(node, flow, destination) response-rate draw passed
    rate_passed: bool
    source_ip: IPv4Address
    reply_ip_ttl: int
    return_hops: int
    #: RFC 4950 quote template, or None when the responder does not quote
    quote: QuoteTemplate | None

    def materialize_quote(self, ttl: int) -> tuple[LabelStackEntry, ...] | None:
        """The concrete quoted stack for a probe sent with ``ttl``."""
        if self.quote is None:
            return None
        return _materialize(self.quote, ttl)


@dataclass(slots=True)
class WalkStats:
    """Fast-path and cache tallies (observational; telemetry gauges)."""

    #: recording walks completed and usable for synthesis
    walks_recorded: int = 0
    #: recording attempts discarded (equivalence not guaranteed)
    walks_fallback: int = 0
    #: probes answered from a recorded walk in O(1)
    probes_synthesized: int = 0
    #: probes answered by a full reference walk
    probes_walked: int = 0
    #: per-node processing steps executed by reference walks
    nodes_processed: int = 0
    #: memoized flow-next-hop resolutions served from cache
    next_hop_hits: int = 0
    #: flow-next-hop resolutions computed and cached
    next_hop_misses: int = 0
    #: topology epochs the engine has moved through (cache invalidations)
    epoch_transitions: int = 0
    #: synthesis requests refused because the recording's epoch was stale
    stale_walk_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly view (benchmarks, telemetry gauges)."""
        return {
            "walks_recorded": self.walks_recorded,
            "walks_fallback": self.walks_fallback,
            "probes_synthesized": self.probes_synthesized,
            "probes_walked": self.probes_walked,
            "nodes_processed": self.nodes_processed,
            "next_hop_hits": self.next_hop_hits,
            "next_hop_misses": self.next_hop_misses,
            "epoch_transitions": self.epoch_transitions,
            "stale_walk_fallbacks": self.stale_walk_fallbacks,
        }


@dataclass(slots=True)
class RecordedWalk:
    """One recorded ``(src, destination, flow)`` walk, ready to answer
    any probe TTL.

    ``ok`` is the exactness guarantee: when False, the engine must (and
    does) fall back to the reference walker for every probe.
    """

    src: int
    dest: IPv4Address
    flow_id: int
    ok: bool = False
    #: engine topology epoch the recording was taken under; a recording
    #: whose epoch trails the engine's is *stale* and must never be used
    #: to synthesize a reply (the engine falls back to a live walk)
    epoch: int = 0
    #: probe TTL -> expiry checkpoint; keys are exactly 1..len(events)
    expiry_by_ttl: dict[int, WalkEvent] = field(default_factory=dict)
    #: routers visited (blackout checkpoints), in walk order
    visits: tuple[int, ...] = ()
    #: the TTL-independent delivery reply, or None when the walk dropped
    terminal_reply: "ProbeReply | None" = None
    #: ground-truth hops recorded alongside (reused by the TNT prober)
    truth: "list[TruthHop]" = field(default_factory=list)


class WalkRecorder:
    """Observer threaded through one instrumented reference walk.

    The engine calls :meth:`on_visit` at every blackout checkpoint and
    :meth:`on_check` at every TTL-expiry checkpoint; the recorder builds
    the :class:`RecordedWalk` and flags anything it cannot model.
    """

    def __init__(
        self, engine: "ForwardingEngine", src: int, dest: IPv4Address, flow_id: int
    ) -> None:
        self._engine = engine
        self._src = src
        self._dest = dest
        self._flow = flow_id
        self._visits: list[int] = []
        self._events: list[WalkEvent] = []
        self._expiry_by_ttl: dict[int, WalkEvent] = {}
        #: engine-wide (node, prev, vp) -> reply-skeleton cache; flows
        #: and destinations share paths, so skeletons recur heavily
        self._skeletons = engine._reply_skeletons
        self.inexact = False
        # bound-method shortcut: on_visit fires once per visited router
        self.on_visit = self._visits.append

    def on_check(
        self,
        node: int,
        prev: int | None,
        value: int,
        quoted: LabelStack | None,
    ) -> None:
        """The walk passed one TTL-expiry checkpoint testing ``value``.

        ``quoted`` is what the responder would quote (already None when
        it does not implement RFC 4950).
        """
        concrete = int(value)
        if concrete <= 1:
            # The recording walk itself is about to expire: the path is
            # deeper than the recording TTL (or a pathological pipe
            # tunnel ran its 255 down).  Exactness is gone.
            self.inexact = True
            return
        if type(value) is not SymTtl or not value.probe:
            # A pipe-mode constant: no probe expires here, the hop is
            # invisible.  Nothing to record.
            return
        expiry_ttl = RECORD_TTL - concrete + 1
        expiry_by_ttl = self._expiry_by_ttl
        if expiry_ttl in expiry_by_ttl:  # pragma: no cover - defensive
            self.inexact = True
            return
        key = (node, prev, self._src)
        skeleton = self._skeletons.get(key)
        if skeleton is None:
            skeleton = self._build_skeleton(node, prev)
            self._skeletons[key] = skeleton
        silent, rate, source, reply_ip_ttl, return_hops = skeleton
        rate_passed = (
            rate >= 1.0
            or unit_hash("icmp-drop", node, self._flow, self._dest.value) < rate
        )
        template: QuoteTemplate | None = None
        if quoted is not None:
            template = tuple(
                (
                    entry.label,
                    entry.tc,
                    entry.bottom_of_stack,
                    True,
                    int(entry.ttl) - RECORD_TTL,
                )
                if (isinstance(entry.ttl, SymTtl) and entry.ttl.probe)
                else (
                    entry.label,
                    entry.tc,
                    entry.bottom_of_stack,
                    False,
                    int(entry.ttl),
                )
                for entry in quoted
            )
        event = WalkEvent(
            node,
            len(self._visits),
            silent,
            rate_passed,
            source,
            reply_ip_ttl,
            return_hops,
            template,
        )
        self._events.append(event)
        expiry_by_ttl[expiry_ttl] = event

    def _build_skeleton(
        self, node: int, prev: int | None
    ) -> tuple[bool, float, IPv4Address, int, int]:
        """The TTL- and flow-independent reply ingredients of one
        responder, mirroring :meth:`ForwardingEngine._time_exceeded`
        decision order."""
        engine = self._engine
        router = engine.network.router(node)
        source = (
            router.interfaces.get(prev) if prev is not None else router.loopback
        )
        if source is None:  # pragma: no cover - defensive, as in the engine
            source = router.loopback
            assert source is not None
        reply_ip_ttl, return_hops = engine._reply_meta(node, self._src, echo=False)
        return (
            router.icmp_silent,
            router.icmp_response_rate,
            source,
            reply_ip_ttl,
            return_hops,
        )

    def finalize(
        self,
        terminal_reply: "ProbeReply | None",
        dropped: bool,
        truth: "list[TruthHop]",
    ) -> RecordedWalk:
        """Seal the recording into a :class:`RecordedWalk`.

        ``terminal_reply`` is the delivery reply the walk returned (or
        None); ``dropped`` marks a silent :class:`PacketDropped` death.
        A walk that neither delivered nor dropped expired mid-recording
        and is inexact by definition.
        """
        if not dropped and terminal_reply is None:
            self.inexact = True
        # The probe-TTL chain is decremented exactly once per checkpoint,
        # so offsets must come out contiguous from 1; anything else means
        # the symbolic model missed a mutation -- refuse to synthesize.
        # Dict keys are distinct, so len + bounds imply exactly {1..n}.
        expiry = self._expiry_by_ttl
        if len(expiry) != len(self._events) or (
            expiry and (min(expiry) != 1 or max(expiry) != len(expiry))
        ):
            self.inexact = True
        return RecordedWalk(
            src=self._src,
            dest=self._dest,
            flow_id=self._flow,
            ok=not self.inexact,
            expiry_by_ttl=self._expiry_by_ttl,
            visits=tuple(self._visits),
            terminal_reply=None if dropped else terminal_reply,
            truth=truth,
        )
