"""Measurement tooling: Paris traceroute, TNT revelation, tunnel taxonomy.

This layer plays the role of the paper's data-collection stack: a Paris
traceroute whose replies may quote MPLS label stacks (RFC 4950), the
TNT extension that reveals hidden tunnels, and the Donnet et al. tunnel
taxonomy (explicit / implicit / opaque / invisible).
"""

from repro.probing.records import QuotedLse, Trace, TraceHop
from repro.probing.sanitize import (
    AnomalyKind,
    SanitizePolicy,
    SanitizeResult,
    TraceAnomaly,
    TraceSanitizationError,
    TraceSanitizer,
)
from repro.probing.traceroute import ParisTraceroute
from repro.probing.tnt import TntProber
from repro.probing.tunnels import ObservedTunnel, TunnelType, classify_tunnels

__all__ = [
    "QuotedLse",
    "Trace",
    "TraceHop",
    "AnomalyKind",
    "SanitizePolicy",
    "SanitizeResult",
    "TraceAnomaly",
    "TraceSanitizationError",
    "TraceSanitizer",
    "ParisTraceroute",
    "TntProber",
    "ObservedTunnel",
    "TunnelType",
    "classify_tunnels",
]
