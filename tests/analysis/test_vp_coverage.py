"""Tests for the Fig. 17 VP discovery curve."""

import pytest

from repro.analysis.vp_coverage import (
    discovery_skew,
    normalized_curve,
    vp_discovery_curve,
)


class TestDiscoveryCurve:
    def test_cumulative_monotone(self, esnet_result):
        curve = vp_discovery_curve(esnet_result.dataset)
        totals = [p.cumulative_addresses for p in curve]
        assert totals == sorted(totals)

    def test_covers_all_vps(self, esnet_result):
        curve = vp_discovery_curve(esnet_result.dataset)
        assert [p.vp for p in curve] == (
            esnet_result.dataset.vantage_points()
        )

    def test_final_total_matches_distinct_addresses(self, esnet_result):
        curve = vp_discovery_curve(esnet_result.dataset)
        assert curve[-1].cumulative_addresses == len(
            esnet_result.dataset.distinct_addresses()
        )

    def test_new_addresses_sum(self, esnet_result):
        curve = vp_discovery_curve(esnet_result.dataset)
        assert sum(p.new_addresses for p in curve) == (
            curve[-1].cumulative_addresses
        )

    def test_custom_order(self, esnet_result):
        vps = esnet_result.dataset.vantage_points()
        curve = vp_discovery_curve(esnet_result.dataset, list(reversed(vps)))
        assert [p.vp for p in curve] == list(reversed(vps))

    def test_normalized_ends_at_one(self, esnet_result):
        curve = vp_discovery_curve(esnet_result.dataset)
        normalized = normalized_curve(curve)
        assert normalized[-1] == pytest.approx(1.0)

    def test_every_vp_contributes(self, esnet_result):
        # "the discovery was reasonably well spread out"
        curve = vp_discovery_curve(esnet_result.dataset)
        assert all(p.new_addresses > 0 for p in curve)

    def test_skew_not_total(self, esnet_result):
        curve = vp_discovery_curve(esnet_result.dataset)
        assert discovery_skew(curve) < 1.0

    def test_empty(self):
        assert normalized_curve([]) == []
        assert discovery_skew([]) == 0.0
