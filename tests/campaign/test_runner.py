"""Integration tests for the campaign runner."""

import pytest

from repro.campaign import CampaignRunner
from repro.core.flags import Flag


class TestEsnetCampaign(object):
    """The ground-truth AS: the paper's Table 3 story must hold."""

    def test_every_trace_crosses_the_as(self, esnet_result):
        analysis = esnet_result.analysis
        assert analysis.traces_in_as == analysis.traces_total > 0

    def test_co_dominates(self, esnet_result):
        counts = esnet_result.analysis.flag_counts()
        total = sum(counts.values())
        assert counts[Flag.CO] / total >= 0.8
        assert counts[Flag.CVR] == 0  # nothing fingerprintable
        assert counts[Flag.LSVR] == 0
        assert counts[Flag.LVR] == 0

    def test_truth_marks_sr_interfaces(self, esnet_result):
        assert esnet_result.truth.deploys_sr
        assert esnet_result.truth.sr_addresses
        assert not esnet_result.truth.ldp_addresses

    def test_detected_sr_subset_of_truth(self, esnet_result):
        detected = esnet_result.analysis.sr_addresses
        assert detected
        assert detected <= esnet_result.truth.sr_addresses

    def test_no_in_as_fingerprints_identified(self, esnet_result):
        # ESnet boxes answer neither SNMPv3 nor ping; only transit-side
        # or destination addresses may fingerprint.
        analysis = esnet_result.analysis
        in_as = (
            analysis.sr_addresses
            | analysis.mpls_addresses
            | analysis.ip_addresses
        )
        for address in in_as:
            fp = esnet_result.fingerprints.get(address)
            assert fp is None or not fp.identified

    def test_trace_segments_collected(self, esnet_result):
        assert esnet_result.trace_segments
        assert all(
            isinstance(segments, list)
            for _trace, segments in esnet_result.trace_segments
        )


class TestRunnerMechanics:
    def test_deterministic_runs(self):
        a = CampaignRunner(seed=11, vps_per_as=2, targets_per_as=6).run_as(27)
        b = CampaignRunner(seed=11, vps_per_as=2, targets_per_as=6).run_as(27)
        assert a.dataset.traces == b.dataset.traces
        assert a.analysis.flag_counts() == b.analysis.flag_counts()

    def test_seed_changes_results(self):
        a = CampaignRunner(seed=11, vps_per_as=2, targets_per_as=6).run_as(27)
        b = CampaignRunner(seed=12, vps_per_as=2, targets_per_as=6).run_as(27)
        assert a.dataset.traces != b.dataset.traces

    def test_each_vp_probes_all_targets(self):
        runner = CampaignRunner(seed=3, vps_per_as=3, targets_per_as=8)
        result = runner.run_as(27)
        by_vp = {
            vp: len(result.dataset.traces_from_vp(vp))
            for vp in result.dataset.vantage_points()
        }
        assert len(by_vp) == 3
        assert len(set(by_vp.values())) == 1  # same target count per VP

    def test_vp_shuffling_differs(self):
        runner = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=8)
        result = runner.run_as(27)
        vps = result.dataset.vantage_points()
        order_a = [
            t.destination for t in result.dataset.traces_from_vp(vps[0])
        ]
        order_b = [
            t.destination for t in result.dataset.traces_from_vp(vps[1])
        ]
        assert sorted(order_a, key=int) == sorted(order_b, key=int)
        assert order_a != order_b

    def test_run_portfolio_subset(self):
        runner = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=6)
        results = runner.run_portfolio(as_ids=[46, 7])
        assert set(results) == {46, 7}

    def test_invalid_vps_per_as(self):
        with pytest.raises(ValueError):
            CampaignRunner(vps_per_as=0)

    def test_metadata_recorded(self):
        runner = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=6)
        result = runner.run_as(27)
        assert result.dataset.metadata["as_id"] == "27"
        assert result.dataset.metadata["seed"] == "3"
        assert len(result.dataset.metadata["vps"].split(",")) == 2


class TestPortfolioShapes:
    def test_proximus_is_lso_only(self, small_portfolio_results):
        counts = small_portfolio_results[7].analysis.flag_counts()
        assert counts[Flag.LSO] > 0
        assert all(
            counts[f] == 0 for f in Flag if f is not Flag.LSO
        )

    def test_microsoft_has_strong_flags(self, small_portfolio_results):
        counts = small_portfolio_results[15].analysis.flag_counts()
        assert counts[Flag.CVR] + counts[Flag.CO] > 0

    def test_kddi_fingerprint_rich(self, small_portfolio_results):
        # AS#31 overrides give high SNMP coverage -> CVR dominates
        counts = small_portfolio_results[31].analysis.flag_counts()
        assert counts[Flag.CVR] > 0

    def test_truth_consistency(self, small_portfolio_results):
        for result in small_portfolio_results.values():
            if not result.spec.scenario.deploys_sr:
                assert not result.truth.sr_addresses


class TestAliasIntegration:
    def test_alias_sets_cover_known_addresses(self, esnet_result):
        covered = {
            address
            for alias_set in esnet_result.alias_sets
            for address in alias_set.addresses
        }
        # every covered address was observed; near-total coverage
        observed = esnet_result.dataset.distinct_addresses()
        assert covered <= observed
        assert len(covered) >= len(observed) - 2

    def test_router_view_smaller_than_interface_view(self, esnet_result):
        assert esnet_result.router_count() <= len(
            esnet_result.dataset.distinct_addresses()
        )
        assert esnet_result.router_count() > 0

    def test_sr_router_count_bounded(self, esnet_result):
        assert 0 < esnet_result.sr_router_count() <= (
            esnet_result.router_count()
        )


class TestVpClamp:
    def test_clamp_warns_and_records_metadata(self, caplog):
        from repro.campaign.vantage_points import default_vantage_points

        pool = tuple(default_vantage_points()[:3])
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            runner = CampaignRunner(
                vantage_points=pool, seed=3, vps_per_as=5, targets_per_as=6
            )
        assert runner.vps_requested == 5
        assert runner.vps_per_as == 3
        assert any(
            "clamping" in record.getMessage() for record in caplog.records
        )
        metadata = runner.run_as(27).dataset.metadata
        assert metadata["vps_requested"] == "5"
        assert metadata["vps_effective"] == "3"

    def test_no_clamp_leaves_metadata_untouched(self):
        runner = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=6)
        metadata = runner.run_as(27).dataset.metadata
        assert "vps_requested" not in metadata
        assert "vps_effective" not in metadata


class TestFingerprintDedupe:
    def test_lookups_hit_each_key_once(self, monkeypatch):
        from repro.fingerprint.combined import CombinedFingerprinter

        calls = []
        original = CombinedFingerprinter.fingerprint

        def counting(self, address, reply_ttl, vp_router_id):
            calls.append((address, reply_ttl, vp_router_id))
            return original(self, address, reply_ttl, vp_router_id)

        monkeypatch.setattr(CombinedFingerprinter, "fingerprint", counting)
        runner = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=8)
        result = runner.run_as(27)
        # every (address, reply TTL, VP) key is probed at most once...
        assert len(calls) == len(set(calls))
        # ...which is strictly cheaper than probing every hop occurrence
        occurrences = sum(
            1
            for trace in result.dataset
            for hop in trace.hops
            if hop.address is not None
        )
        assert 0 < len(calls) < occurrences

    def test_dedupe_preserves_results(self):
        # Two identical runs (the dedupe is always on) stay deterministic
        # and identified addresses keep their fingerprints.
        a = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=8).run_as(31)
        b = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=8).run_as(31)
        assert a.fingerprints == b.fingerprints
        assert any(fp.identified for fp in a.fingerprints.values())


class TestAnonymizedDump:
    def test_cli_anonymized_dump(self, tmp_path, capsys):
        from repro.campaign import TraceDataset
        from repro.cli import main

        path = tmp_path / "release.jsonl"
        assert main(
            [
                "run-as", "46", "--targets", "8", "--vps", "2",
                "--dump", str(path), "--anonymize", "release-key",
            ]
        ) == 0
        released = TraceDataset.load_jsonl(path)
        assert released.metadata["anonymized"] == "prefix-preserving"
        for trace in released:
            for hop in trace.hops:
                assert hop.truth_asn is None
