"""Performance -- telemetry and tracing instrumentation overhead.

The observability layer promises to be effectively free: the default
:data:`~repro.obs.telemetry.NULL_TELEMETRY` path does no extra work at
all, and a live recorder adds only a timing closure around the
sanitize/detect hot calls (two clock reads and a list append per
stage; the samples are summed and binned into latency histograms once
per AS, outside the loop).  Tracing adds span/parent ids to span
records and a per-process clock anchor -- all outside the per-trace
loop -- so a traced recorder must cost the same as a plain one.

These benchmarks hold that promise to a number, on both hot paths the
tracing work touched: <2% overhead with telemetry enabled (plain or
traced).  Scheduler noise is one-sided -- it can only make a run
*slower* -- so each estimate is min-of-N over interleaved repetitions,
and the assertion takes the best overhead ratio over up to
``TRIALS`` independent trials: a single clean trial under budget
proves the true overhead is under budget, while no amount of noise
can fake a pass.
"""

import gc
import time

from repro.campaign import CampaignRunner
from repro.core.pipeline import ArestPipeline
from repro.obs import Telemetry
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.trace import TraceContext

from benchmarks.conftest import emit

#: alternate instrumented/uninstrumented runs this many times and keep
#: the fastest of each -- the stable estimator for a tight-bound check
REPETITIONS = 7

#: independent re-measurements; the best (lowest) overhead ratio wins
#: (a trial under budget short-circuits, so extra trials only cost
#: time on machines noisy enough to need them)
TRIALS = 5

#: corpus replication factor: longer runs drown out timer granularity
COPIES = 5

OVERHEAD_BUDGET = 0.02


def _best_overhead(run_baseline, run_instrumented) -> tuple[float, float]:
    """(baseline seconds, best overhead ratio) over up to TRIALS trials."""
    # warm caches on both paths before timing anything
    run_baseline()
    run_instrumented()
    best_base = best_overhead = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(TRIALS):
            base = instrumented = float("inf")
            for _ in range(REPETITIONS):
                base = min(base, run_baseline())
                instrumented = min(instrumented, run_instrumented())
            best_base = min(best_base, base)
            best_overhead = min(best_overhead, instrumented / base - 1)
            if best_overhead < OVERHEAD_BUDGET:
                break  # a clean trial settles a one-sided question
    finally:
        gc.enable()
    return best_base, best_overhead


def test_bench_telemetry_overhead(esnet_campaign):
    """Detector path: analyze_as untimed vs. plain vs. traced recorder."""
    pipeline = ArestPipeline()
    asn = esnet_campaign.spec.asn
    corpus = list(esnet_campaign.dataset.traces) * COPIES
    fingerprints = esnet_campaign.fingerprints

    def run_once(telemetry) -> float:
        tick = time.perf_counter()
        pipeline.analyze_as(asn, corpus, fingerprints, telemetry=telemetry)
        return time.perf_counter() - tick

    baseline, plain = _best_overhead(
        lambda: run_once(None), lambda: run_once(Telemetry())
    )
    _, traced = _best_overhead(
        lambda: run_once(None),
        lambda: run_once(Telemetry(trace=TraceContext.new())),
    )
    emit(
        f"analyze_as over {len(corpus):,} traces: baseline "
        f"{baseline * 1e3:.2f}ms\n"
        f"  telemetry overhead {plain:+.2%} (budget {OVERHEAD_BUDGET:.0%})\n"
        f"  telemetry+tracing overhead {traced:+.2%}"
        f" (budget {OVERHEAD_BUDGET:.0%})"
    )
    assert plain < OVERHEAD_BUDGET
    assert traced < OVERHEAD_BUDGET


def test_bench_campaign_tracing_overhead():
    """Campaign path: a full per-AS run, tracing off vs. on.

    ``run_as`` exercises everything the tracing refactor touched end
    to end -- the per-stage span tree, probe latency sampling, and the
    sanitize/detect timing closures -- so this is the overhead number
    a paper-scale campaign actually pays per AS.
    """
    runner = CampaignRunner(seed=1)

    def run_once(telemetry) -> float:
        runner.telemetry = telemetry
        try:
            tick = time.perf_counter()
            runner.run_as(46)
            return time.perf_counter() - tick
        finally:
            runner.telemetry = NULL_TELEMETRY

    baseline, traced = _best_overhead(
        lambda: run_once(NULL_TELEMETRY),
        lambda: run_once(Telemetry(trace=TraceContext.new())),
    )
    emit(
        f"run_as(46), one full AS campaign: baseline {baseline * 1e3:.2f}ms\n"
        f"  tracing overhead {traced:+.2%} (budget {OVERHEAD_BUDGET:.0%})"
    )
    assert traced < OVERHEAD_BUDGET
