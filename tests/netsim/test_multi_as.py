"""Tests for packets crossing *several* MPLS-enabled ASes.

The campaign's transit chains are plain IP, so these tests build the
harder case explicitly: VP -> AS1 (SR) -> AS2 (LDP) -> destination.
The packet must be pushed at AS1's border, popped at AS1's egress,
re-pushed at AS2's border, and popped again -- with each AS's labels
confined to its own region of the trace.
"""

import pytest

from repro.core.detector import ArestDetector
from repro.core.flags import Flag
from repro.netsim.forwarding import ForwardingEngine, ReplyKind
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import Vendor
from repro.probing.tnt import TntProber

AS1, AS2 = 65_101, 65_102


@pytest.fixture(scope="module")
def two_as_world():
    net = Network()
    vp = net.add_router("vp", asn=64_900, role=RouterRole.VANTAGE)
    prev = vp
    as1_routers, as2_routers = [], []
    for i in range(4):
        r = net.add_router(f"a{i}", asn=AS1, vendor=Vendor.CISCO)
        net.add_link(prev, r)
        as1_routers.append(r)
        prev = r
    for i in range(4):
        r = net.add_router(
            f"b{i}", asn=AS2, vendor=Vendor.JUNIPER, ldp_enabled=True
        )
        net.add_link(prev, r)
        as2_routers.append(r)
        prev = r
    prefix = net.announce_prefix(as2_routers[-1], 24)

    igp = ShortestPaths(net)
    ldp = LdpState(net, seed=3)
    sr = SegmentRoutingDomain(net, asn=AS1, seed=3)
    for r in as1_routers:
        sr.enroll(r)
    controller = TunnelController(net, igp, ldp, {AS1: sr})
    controller.set_policy(TunnelPolicy(asn=AS1))
    controller.set_policy(TunnelPolicy(asn=AS2))
    engine = ForwardingEngine(net, igp, controller)
    target = prefix.address_at(3)
    return net, vp, target, engine


class TestTwoAsTraversal:
    def test_delivery(self, two_as_world):
        net, vp, target, engine = two_as_world
        reply = engine.forward_probe(vp.router_id, target, 64)
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_two_disjoint_tunnels(self, two_as_world):
        net, vp, target, engine = two_as_world
        truth = engine.truth_walk(vp.router_id, target)
        pushers = [t.router_id for t in truth if t.pushed]
        assert len(pushers) == 2  # one push per AS border
        pusher_asns = {net.router(rid).asn for rid in pushers}
        assert pusher_asns == {AS1, AS2}

    def test_labels_confined_to_their_as(self, two_as_world):
        net, vp, target, engine = two_as_world
        truth = engine.truth_walk(vp.router_id, target)
        for hop in truth:
            if not hop.received_planes:
                continue
            if hop.asn == AS1:
                assert hop.received_planes[0] == "sr"
            elif hop.asn == AS2:
                assert hop.received_planes[0] == "ldp"

    def test_trace_shows_both_tunnel_flavours(self, two_as_world):
        net, vp, target, engine = two_as_world
        trace = TntProber(engine, seed=2).trace(vp.router_id, target)
        as1_labels = [
            h.top_label
            for h in trace.labeled_hops()
            if h.truth_asn == AS1
        ]
        as2_labels = [
            h.top_label
            for h in trace.labeled_hops()
            if h.truth_asn == AS2
        ]
        assert len(set(as1_labels)) == 1  # SR: one persistent label
        assert len(set(as2_labels)) == len(as2_labels)  # LDP: all differ

    def test_detector_flags_only_the_sr_as(self, two_as_world):
        net, vp, target, engine = two_as_world
        trace = TntProber(engine, seed=2).trace(vp.router_id, target)
        detector = ArestDetector()
        as1_segments = detector.detect(
            trace, {}, hop_filter=lambda h: h.truth_asn == AS1
        )
        as2_segments = detector.detect(
            trace, {}, hop_filter=lambda h: h.truth_asn == AS2
        )
        assert [s.flag for s in as1_segments] == [Flag.CO]
        assert as2_segments == []

    def test_cross_as_run_never_forms(self, two_as_world):
        """Even unfiltered, the AS boundary breaks label runs: AS1's SR
        label and AS2's first LDP label never sequence-match by luck in
        this fixture, and the unlabeled inter-AS hop separates them."""
        net, vp, target, engine = two_as_world
        trace = TntProber(engine, seed=2).trace(vp.router_id, target)
        detector = ArestDetector()
        segments = detector.detect(trace, {})
        for segment in segments:
            asns = {
                trace.hops[i].truth_asn for i in segment.hop_indices
            }
            assert len(asns) == 1
