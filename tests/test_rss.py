"""The memory watchdog: sampling, shedding ladder, recycle requests."""

import pytest

from repro.util.rss import (
    RssWatchdog,
    current_rss_bytes,
    peak_rss_bytes,
)


class TestSampling:
    def test_samples_are_plausible(self):
        current = current_rss_bytes()
        peak = peak_rss_bytes()
        # a running CPython interpreter occupies at least a few MiB
        # and far less than a TiB
        assert 1 << 20 < current < 1 << 40
        assert 1 << 20 < peak < 1 << 40


class TestWatchdog:
    def test_disabled_watchdog_is_silent(self):
        watchdog = RssWatchdog(None)
        verdict = watchdog.check()
        assert not verdict.shed and not verdict.recycle
        assert watchdog.checks == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RssWatchdog(0)
        with pytest.raises(ValueError):
            RssWatchdog(-1)

    def test_generous_budget_never_sheds(self):
        watchdog = RssWatchdog(1 << 40)  # 1 TiB: never reached
        shed_calls = []
        watchdog.add_shedder(lambda: shed_calls.append(True))
        verdict = watchdog.check()
        assert not verdict.shed and not verdict.recycle
        assert shed_calls == []
        assert watchdog.checks == 1

    def test_tiny_budget_sheds_then_requests_recycle(self):
        watchdog = RssWatchdog(1 << 20)  # 1 MiB: always exceeded
        shed_calls = []
        watchdog.add_shedder(lambda: shed_calls.append(True))
        verdict = watchdog.check()
        assert verdict.shed
        assert verdict.recycle  # shedding cannot get under 1 MiB
        assert verdict.rss_bytes > 1 << 20
        assert shed_calls == [True]
        assert watchdog.recycles_requested == 1

    def test_shedders_stay_registered_across_checks(self):
        """Caches refill between shards; shedding must repeat."""
        watchdog = RssWatchdog(1 << 20)
        shed_calls = []
        watchdog.add_shedder(lambda: shed_calls.append(True))
        watchdog.check()
        watchdog.check()
        assert shed_calls == [True, True]
        assert watchdog.sheds == 2
