"""Backpressure policy: bound, hysteresis, fairness, atomic batches."""

from __future__ import annotations

from repro.service.ingest import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_SUBMITTER_QUOTA,
    IngestQueue,
)


def _fill(queue: IngestQueue, n: int, submitter: str = "a") -> None:
    assert queue.admit(n, submitter).accepted
    queue.enqueue(list(range(n)), submitter)


class TestBound:
    def test_capacity_is_a_hard_bound(self):
        queue = IngestQueue(4, low_watermark=0, fair_share=4)
        _fill(queue, 4)
        outcome = queue.admit(1, "a")
        assert not outcome.accepted
        assert outcome.reason == REASON_QUEUE_FULL
        assert outcome.retry_after == queue.retry_after
        assert queue.depth == 4
        assert queue.peak_depth == 4

    def test_batches_admit_atomically(self):
        # 2 free slots, a 3-trace batch: all-or-nothing means nothing
        queue = IngestQueue(4, low_watermark=0, fair_share=4)
        _fill(queue, 2)
        assert not queue.admit(3, "a").accepted
        assert queue.depth == 2
        assert queue.rejected[REASON_QUEUE_FULL] == 3

    def test_rejection_counts_are_per_trace(self):
        queue = IngestQueue(2, low_watermark=0, fair_share=2)
        _fill(queue, 2)
        queue.admit(5, "a")
        assert queue.rejected[REASON_QUEUE_FULL] == 5


class TestHysteresis:
    def test_saturation_holds_until_low_watermark(self):
        queue = IngestQueue(4, low_watermark=1, fair_share=4)
        _fill(queue, 4)
        assert not queue.admit(1, "a").accepted  # saturates
        # draining to 2 is still above the low watermark: stay refused
        import asyncio

        async def pop(n):
            for _ in range(n):
                await queue.get()
                queue.task_done()

        asyncio.run(pop(2))
        assert queue.depth == 2
        assert not queue.admit(1, "a").accepted
        # at the low watermark the gate reopens
        asyncio.run(pop(1))
        assert queue.depth == 1
        assert queue.admit(1, "a").accepted

    def test_unsaturated_queue_admits_at_any_depth(self):
        queue = IngestQueue(4, low_watermark=1, fair_share=4)
        _fill(queue, 3)
        assert queue.admit(1, "a").accepted


class TestFairness:
    def test_one_firehose_cannot_starve_the_rest(self):
        queue = IngestQueue(8, low_watermark=0, fair_share=3)
        _fill(queue, 3, "firehose")
        refused = queue.admit(1, "firehose")
        assert not refused.accepted
        assert refused.reason == REASON_SUBMITTER_QUOTA
        # a different submitter still gets in
        assert queue.admit(2, "polite").accepted

    def test_slots_free_as_items_are_consumed(self):
        import asyncio

        queue = IngestQueue(8, low_watermark=0, fair_share=2)
        _fill(queue, 2, "a")
        assert not queue.admit(1, "a").accepted

        async def pop_one():
            await queue.get()
            queue.task_done()

        asyncio.run(pop_one())
        assert queue.admit(1, "a").accepted


class TestLifecycle:
    def test_draining_gate(self):
        queue = IngestQueue(4)
        queue.start_draining()
        outcome = queue.admit(1, "a")
        assert not outcome.accepted
        assert outcome.reason == REASON_DRAINING

    def test_drain_now_empties_and_unblocks_join(self):
        import asyncio

        queue = IngestQueue(8)
        _fill(queue, 5)
        assert queue.drain_now() == 5
        assert queue.depth == 0

        async def join():
            await asyncio.wait_for(queue.join(), timeout=1)

        asyncio.run(join())

    def test_count_rejected_feeds_the_same_counter(self):
        queue = IngestQueue(4)
        queue.count_rejected("bad-json", 3)
        assert queue.rejected["bad-json"] == 3
