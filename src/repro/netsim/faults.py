"""Deterministic fault injection for the measurement plane.

The paper's campaign ran 7.7M traceroutes from 50 real vantage points,
where probe loss, ICMP rate-limiting, transient outages and SNMP dataset
gaps are the norm.  This module models those impairments as a seeded
:class:`FaultPlan` so robustness experiments are reproducible bit-for-bit:

- **per-probe loss** -- each probe (identified by its flow, destination,
  TTL and retry attempt) is dropped with probability ``probe_loss``;
- **ICMP rate limiting** -- each router polices the ``time-exceeded``
  messages it originates through a token bucket refilled per probe sent
  (the campaign-wide probe counter is the clock);
- **transient blackouts** -- a router goes completely dark (neither
  forwards nor replies) for whole windows of the probe clock;
- **SNMP timeouts** -- a router's SNMPv3 fingerprint lookup times out,
  modelling gaps in the frozen public dataset.

Beyond loss, the plan models *corruption* of what a vantage point
records -- the mangled RFC 4950 extensions, bogus reply TTLs, off-path
spoofed replies and mid-trace path churn real campaigns see:

- **stack suppression/truncation/garbling** -- a reply's quoted label
  stack is stripped entirely, cut down to its top entry, or has its top
  label replaced with a hash-derived 20-bit value;
- **stale-label replay** -- a hop quotes the *previous* hop's stack
  (a middlebox echoing cached extension bytes);
- **reply-TTL perturbation** -- the reply IP TTL shifts by a
  hash-derived delta, poisoning TTL fingerprinting;
- **off-path spoofed replies** -- the reply's source address is
  replaced by a martian (``240.0.0.0/4``) spoofer address;
- **duplicated / reordered hops** -- a recorded hop appears twice, or
  two adjacent records swap;
- **mid-trace rerouting** -- the effective flow identifier churns past
  a hash-derived pivot TTL, defeating Paris flow pinning.

The injector only *decides* corruption faults; applying them to trace
records is the probing layer's job (netsim must not import probing).

All draws hash stable keys (:func:`repro.util.determinism.unit_hash`),
so a fixed plan replays the exact same fault schedule, and
:meth:`FaultPlan.none` -- the default everywhere -- injects nothing at
all: runners never attach an injector for an inactive plan, keeping seed
behaviour byte-identical.

The :class:`FaultPlan` is immutable configuration; the
:class:`FaultInjector` carries the mutable runtime (probe clock, token
buckets, counters) and is scoped per campaign AS so fault streams stay
independent across ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.netsim.mpls import FIRST_UNRESERVED_LABEL, MAX_LABEL
from repro.util.determinism import int_hash, unit_hash


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Immutable, seeded description of measurement-plane impairments."""

    #: probability that any single probe is lost in transit
    probe_loss: float = 0.0
    #: sustained ICMP time-exceeded replies per router per probe sent;
    #: None disables rate limiting entirely
    icmp_rate_limit: float | None = None
    #: token-bucket burst size for ICMP rate limiting
    icmp_burst: int = 8
    #: probability a router is dark during any given blackout window
    blackout_rate: float = 0.0
    #: width of one blackout window, in probes sent
    blackout_window: int = 256
    #: probability a router's SNMPv3 lookup times out (dataset gap)
    snmp_timeout_rate: float = 0.0
    #: probability a quoted stack is stripped from a reply (RFC 4950
    #: extension lost in transit)
    stack_suppress_rate: float = 0.0
    #: probability a quoted stack is truncated to its top entry
    stack_truncate_rate: float = 0.0
    #: probability a quoted top label is replaced by a garbled value
    label_garble_rate: float = 0.0
    #: probability a hop replays the previous hop's quoted stack
    stale_replay_rate: float = 0.0
    #: probability a reply IP TTL shifts by a hash-derived delta
    ttl_perturb_rate: float = 0.0
    #: probability a reply's source address is spoofed off-path
    spoof_rate: float = 0.0
    #: probability a recorded hop is duplicated in the trace
    duplicate_hop_rate: float = 0.0
    #: probability two adjacent recorded hops swap places
    reorder_rate: float = 0.0
    #: probability a trace reroutes mid-path (flow churn past a pivot)
    reroute_rate: float = 0.0
    #: seed for every fault draw (independent of the campaign seed)
    seed: int = 0

    _CORRUPTION_RATES = (
        "stack_suppress_rate",
        "stack_truncate_rate",
        "label_garble_rate",
        "stale_replay_rate",
        "ttl_perturb_rate",
        "spoof_rate",
        "duplicate_hop_rate",
        "reorder_rate",
        "reroute_rate",
    )

    def __post_init__(self) -> None:
        for name in (
            "probe_loss",
            "blackout_rate",
            "snmp_timeout_rate",
        ) + self._CORRUPTION_RATES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.icmp_rate_limit is not None and self.icmp_rate_limit < 0:
            raise ValueError("icmp_rate_limit must be >= 0 or None")
        if self.icmp_burst < 1:
            raise ValueError("icmp_burst must be >= 1")
        if self.blackout_window < 1:
            raise ValueError("blackout_window must be >= 1")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan (the default everywhere)."""
        return cls()

    @classmethod
    def corruption(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A representative corruption mix at headline intensity ``rate``.

        The headline rate drives label garbling (the acceptance subject);
        the structural classes ride at half intensity and the trace-shape
        classes at a quarter.  Stale-label replay is deliberately *not*
        part of the mix: a replayed stack is byte-identical to the
        adjacent-identical-stack signal genuine uniform-mode SR tunnels
        produce, so no sanitizer can remove it without destroying real
        evidence -- sweep ``stale_replay_rate`` explicitly to study that
        semantic attack.
        """
        return cls(
            label_garble_rate=rate,
            stack_suppress_rate=rate / 2,
            stack_truncate_rate=rate / 2,
            ttl_perturb_rate=rate / 2,
            spoof_rate=rate / 4,
            duplicate_hop_rate=rate / 4,
            reorder_rate=rate / 4,
            reroute_rate=rate / 4,
            seed=seed,
        )

    @property
    def corruption_active(self) -> bool:
        """True when any corruption fault class can fire."""
        return any(getattr(self, name) > 0.0 for name in self._CORRUPTION_RATES)

    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fault."""
        return bool(
            self.probe_loss > 0.0
            or self.icmp_rate_limit is not None
            or self.blackout_rate > 0.0
            or self.snmp_timeout_rate > 0.0
            or self.corruption_active
        )

    def as_dict(self) -> dict:
        """JSON-friendly view (checkpoint config signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class FaultCounters:
    """Per-stage tallies of what the injector actually did."""

    probes_sent: int = 0
    probes_lost: int = 0
    icmp_rate_limited: int = 0
    blackout_drops: int = 0
    snmp_timeouts: int = 0
    reveal_losses: int = 0
    stacks_suppressed: int = 0
    stacks_truncated: int = 0
    labels_garbled: int = 0
    stale_replays: int = 0
    ttls_perturbed: int = 0
    replies_spoofed: int = 0
    hops_duplicated: int = 0
    hops_reordered: int = 0
    traces_rerouted: int = 0

    def merge(self, other: "FaultCounters") -> None:
        """Accumulate another counter set into this one."""
        for f in fields(self):
            setattr(
                self, f.name, getattr(self, f.name) + getattr(other, f.name)
            )

    def corruption_faults(self) -> int:
        """Injected corruption events (stack/TTL/address/order faults)."""
        return (
            self.stacks_suppressed
            + self.stacks_truncated
            + self.labels_garbled
            + self.stale_replays
            + self.ttls_perturbed
            + self.replies_spoofed
            + self.hops_duplicated
            + self.hops_reordered
            + self.traces_rerouted
        )

    def total_faults(self) -> int:
        """Every injected fault (everything but ``probes_sent``)."""
        return (
            self.probes_lost
            + self.icmp_rate_limited
            + self.blackout_drops
            + self.snmp_timeouts
            + self.reveal_losses
            + self.corruption_faults()
        )

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly view."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, record: dict) -> "FaultCounters":
        """Inverse of :meth:`as_dict`."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in record.items() if k in names})


class FaultInjector:
    """Runtime fault state for one campaign scope (typically one AS).

    Loss, blackout and SNMP draws hash stable keys, so they are
    independent of call order; only the token buckets and the blackout
    windows evolve with the probe clock, which advances once per probe
    sent -- itself a deterministic sequence for a fixed campaign.
    """

    def __init__(self, plan: FaultPlan, *scope: object) -> None:
        self._plan = plan
        self._scope = scope
        self._clock = 0
        #: router id -> (tokens, clock at last refill)
        self._buckets: dict[int, tuple[float, int]] = {}
        self.counters = FaultCounters()

    @property
    def plan(self) -> FaultPlan:
        """The immutable plan this injector executes."""
        return self._plan

    @property
    def clock(self) -> int:
        """Probes sent so far in this scope (the fault clock)."""
        return self._clock

    # -- probe plane -------------------------------------------------------------

    def on_probe(self) -> None:
        """Advance the fault clock: one probe has been sent."""
        self._clock += 1
        self.counters.probes_sent += 1

    def probe_lost(
        self,
        flow_id: int,
        dest: object,
        ttl: int,
        attempt: int,
        kind: str = "probe",
    ) -> bool:
        """Stable per-probe loss draw; attempts redraw independently."""
        if self._plan.probe_loss <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "loss", kind, *self._scope,
            flow_id, dest, ttl, attempt,
        )
        if draw < self._plan.probe_loss:
            self.counters.probes_lost += 1
            return True
        return False

    def blacked_out(self, router_id: int) -> bool:
        """Is the router dark during the current blackout window?"""
        rate = self._plan.blackout_rate
        if rate <= 0.0:
            return False
        window = self._clock // self._plan.blackout_window
        draw = unit_hash(
            self._plan.seed, "blackout", *self._scope, router_id, window
        )
        if draw < rate:
            self.counters.blackout_drops += 1
            return True
        return False

    def allow_icmp(self, router_id: int) -> bool:
        """Consume one token from the router's ICMP bucket, if available."""
        rate = self._plan.icmp_rate_limit
        if rate is None:
            return True
        burst = float(self._plan.icmp_burst)
        tokens, last = self._buckets.get(router_id, (burst, self._clock))
        tokens = min(burst, tokens + (self._clock - last) * rate)
        if tokens >= 1.0:
            self._buckets[router_id] = (tokens - 1.0, self._clock)
            return True
        self._buckets[router_id] = (tokens, self._clock)
        self.counters.icmp_rate_limited += 1
        return False

    # -- revelation -------------------------------------------------------------

    def reveal_lost(self, flow_id: int, key: object, attempt: int) -> bool:
        """Loss draw for TNT's extra revelation probes."""
        if self._plan.probe_loss <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "reveal-loss", *self._scope,
            flow_id, key, attempt,
        )
        if draw < self._plan.probe_loss:
            self.counters.reveal_losses += 1
            return True
        return False

    # -- corruption (decisions only; the probing layer applies them) -------------

    def stack_suppressed(self, flow_id: int, dest: object, ttl: int) -> bool:
        """Should this hop's quoted stack be stripped entirely?"""
        if self._plan.stack_suppress_rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "suppress", *self._scope, flow_id, dest, ttl
        )
        if draw < self._plan.stack_suppress_rate:
            self.counters.stacks_suppressed += 1
            return True
        return False

    def stack_truncated(self, flow_id: int, dest: object, ttl: int) -> bool:
        """Should this hop's quoted stack lose its inner entries?"""
        if self._plan.stack_truncate_rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "truncate", *self._scope, flow_id, dest, ttl
        )
        if draw < self._plan.stack_truncate_rate:
            self.counters.stacks_truncated += 1
            return True
        return False

    def garbled_label(
        self, flow_id: int, dest: object, ttl: int, label: int
    ) -> int | None:
        """A garbled replacement for the hop's top label, or None.

        The replacement is a hash-derived unreserved 20-bit value,
        guaranteed to differ from the original.
        """
        if self._plan.label_garble_rate <= 0.0:
            return None
        draw = unit_hash(
            self._plan.seed, "garble", *self._scope, flow_id, dest, ttl
        )
        if draw >= self._plan.label_garble_rate:
            return None
        span = MAX_LABEL + 1 - FIRST_UNRESERVED_LABEL
        offset = int_hash(
            self._plan.seed, "garble-value", *self._scope, flow_id, dest, ttl
        ) % span
        garbled = FIRST_UNRESERVED_LABEL + offset
        if garbled == label:
            garbled = FIRST_UNRESERVED_LABEL + (offset + 1) % span
        self.counters.labels_garbled += 1
        return garbled

    def stale_replayed(self, flow_id: int, dest: object, ttl: int) -> bool:
        """Should this hop replay the previous hop's quoted stack?"""
        if self._plan.stale_replay_rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "replay", *self._scope, flow_id, dest, ttl
        )
        if draw < self._plan.stale_replay_rate:
            self.counters.stale_replays += 1
            return True
        return False

    def ttl_perturbation(self, flow_id: int, dest: object, ttl: int) -> int:
        """A signed reply-TTL delta (0 when the hop is unperturbed)."""
        if self._plan.ttl_perturb_rate <= 0.0:
            return 0
        draw = unit_hash(
            self._plan.seed, "ttl-perturb", *self._scope, flow_id, dest, ttl
        )
        if draw >= self._plan.ttl_perturb_rate:
            return 0
        word = int_hash(
            self._plan.seed, "ttl-delta", *self._scope, flow_id, dest, ttl
        )
        magnitude = 1 + word % 64
        self.counters.ttls_perturbed += 1
        return -magnitude if (word >> 8) % 2 else magnitude

    def spoofed_source(
        self, flow_id: int, dest: object, ttl: int
    ) -> int | None:
        """A martian (240.0.0.0/4) spoofer address value, or None."""
        if self._plan.spoof_rate <= 0.0:
            return None
        draw = unit_hash(
            self._plan.seed, "spoof", *self._scope, flow_id, dest, ttl
        )
        if draw >= self._plan.spoof_rate:
            return None
        host = int_hash(
            self._plan.seed, "spoof-addr", *self._scope, flow_id, dest, ttl
        ) % (1 << 28)
        self.counters.replies_spoofed += 1
        return 0xF0000000 | host

    def hop_duplicated(self, flow_id: int, dest: object, ttl: int) -> bool:
        """Should this recorded hop appear twice in the trace?"""
        if self._plan.duplicate_hop_rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "duplicate", *self._scope, flow_id, dest, ttl
        )
        if draw < self._plan.duplicate_hop_rate:
            self.counters.hops_duplicated += 1
            return True
        return False

    def hops_swapped(self, flow_id: int, dest: object, position: int) -> bool:
        """Should the records at ``position`` and ``position + 1`` swap?"""
        if self._plan.reorder_rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "reorder", *self._scope, flow_id, dest, position
        )
        if draw < self._plan.reorder_rate:
            self.counters.hops_reordered += 1
            return True
        return False

    def rerouted_flow(
        self, flow_id: int, dest: object, max_ttl: int
    ) -> tuple[int, int] | None:
        """Mid-trace reroute: ``(pivot_ttl, new_flow_id)`` or None.

        Probes at or beyond the pivot TTL forward under the new flow
        identifier, modelling path churn Paris pinning cannot suppress.
        """
        if self._plan.reroute_rate <= 0.0:
            return None
        draw = unit_hash(
            self._plan.seed, "reroute", *self._scope, flow_id, dest
        )
        if draw >= self._plan.reroute_rate:
            return None
        pivot = 2 + int_hash(
            self._plan.seed, "reroute-pivot", *self._scope, flow_id, dest
        ) % max(1, max_ttl - 2)
        shift = 1 + int_hash(
            self._plan.seed, "reroute-flow", *self._scope, flow_id, dest
        ) % (2**16 - 1)
        self.counters.traces_rerouted += 1
        return pivot, (flow_id + shift) % 2**16

    # -- control plane ----------------------------------------------------------

    def snmp_timeout(self, router_id: int) -> bool:
        """Stable per-router SNMP timeout draw (a frozen dataset gap)."""
        rate = self._plan.snmp_timeout_rate
        if rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "snmp-timeout", *self._scope, router_id
        )
        if draw < rate:
            self.counters.snmp_timeouts += 1
            return True
        return False
