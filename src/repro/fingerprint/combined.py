"""Combined fingerprinting with the paper's precedence rule.

"In cases where both methods provide different results for the same hop,
SNMPv3-based fingerprinting takes precedence." (Sec. 5)
"""

from __future__ import annotations

from repro.netsim.addressing import IPv4Address
from repro.netsim.forwarding import ForwardingEngine
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.fingerprint.snmp import SnmpOracle
from repro.fingerprint.ttl import TtlFingerprinter


class CombinedFingerprinter:
    """SNMPv3 first, TTL signature as fallback; results are cached per
    interface address (fingerprints are stable within a campaign)."""

    def __init__(
        self,
        engine: ForwardingEngine,
        snmp: SnmpOracle,
    ) -> None:
        self._snmp = snmp
        self._ttl = TtlFingerprinter(engine)
        self._cache: dict[IPv4Address, Fingerprint] = {}
        #: full SNMP+TTL probe rounds actually performed (cache misses)
        self.probe_count = 0

    def fingerprint(
        self,
        address: IPv4Address,
        time_exceeded_ttl: int | None,
        vp_router_id: int,
    ) -> Fingerprint:
        """Fingerprint one interface (SNMPv3 first, TTL fallback)."""
        cached = self._cache.get(address)
        if cached is not None and cached.method is not FingerprintMethod.NONE:
            return cached
        self.probe_count += 1
        result = self._snmp.lookup(address)
        if not result.identified:
            result = self._ttl.fingerprint(
                address, time_exceeded_ttl, vp_router_id
            )
        self._cache[address] = result
        return result

    def cache_size(self) -> int:
        """Number of cached per-interface results."""
        return len(self._cache)
