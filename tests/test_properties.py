"""Cross-cutting property-based tests on forwarding and detection.

These generate random chain configurations and assert invariants that
must hold regardless of deployment style -- the safety net under every
scenario the campaign can produce.
"""

from hypothesis import given, settings, strategies as st

from repro.core.detector import ArestDetector
from repro.core.flags import SEQUENCE_FLAGS
from repro.netsim.forwarding import ReplyKind
from repro.netsim.tunnels import TunnelPolicy
from repro.netsim.vendors import Vendor
from repro.probing.tnt import TntProber

from tests.conftest import TARGET_ASN, ChainNetwork

chain_configs = st.fixed_dictionaries(
    {
        "length": st.integers(min_value=2, max_value=8),
        "sr": st.booleans(),
        "propagate": st.booleans(),
        "rfc4950": st.booleans(),
        "php": st.booleans(),
        "vendor": st.sampled_from(
            [Vendor.CISCO, Vendor.JUNIPER, Vendor.HUAWEI, Vendor.ARISTA]
        ),
        "te": st.sampled_from([0.0, 1.0]),
        "service": st.sampled_from([0.0, 1.0]),
        "seed": st.integers(min_value=0, max_value=50),
    }
)


def build_chain(config) -> ChainNetwork:
    return ChainNetwork(
        length=config["length"],
        sr=config["sr"],
        ldp=not config["sr"],
        propagate=config["propagate"],
        rfc4950=config["rfc4950"],
        php=config["php"],
        vendor=config["vendor"],
        seed=config["seed"],
        policy=TunnelPolicy(
            asn=TARGET_ASN,
            te_waypoint_share=config["te"],
            service_sid_share=config["service"],
            seed=config["seed"],
        ),
    )


@settings(max_examples=60, deadline=None)
@given(config=chain_configs)
def test_probes_always_reach_or_expire(config):
    """Liveness: every probe either expires at a router, is silently
    dropped, or reaches the destination -- and a large-enough TTL always
    reaches it."""
    chain = build_chain(config)
    final = chain.engine.forward_probe(chain.vp.router_id, chain.target, 64)
    assert final is not None
    assert final.kind is ReplyKind.DEST_UNREACHABLE
    assert final.source_ip == chain.target


@settings(max_examples=60, deadline=None)
@given(config=chain_configs)
def test_hop_positions_monotone(config):
    """Responding routers appear in forward-path order as TTL grows."""
    chain = build_chain(config)
    truth = chain.engine.truth_walk(chain.vp.router_id, chain.target)
    order = {t.router_id: i for i, t in enumerate(truth)}
    positions = []
    for ttl in range(1, 40):
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, ttl
        )
        if reply is None:
            continue
        positions.append(order[reply.truth_router_id])
        if reply.kind is not ReplyKind.TIME_EXCEEDED:
            break
    assert positions == sorted(positions)


@settings(max_examples=60, deadline=None)
@given(config=chain_configs)
def test_truth_walk_label_balance(config):
    """Conservation: labels pushed at the ingress either pop inside the
    AS or the packet is delivered unlabeled -- the stack never leaks out
    of the simulation."""
    chain = build_chain(config)
    truth = chain.engine.truth_walk(chain.vp.router_id, chain.target)
    # the last hop before the destination host carries at most the
    # stack the egress will consume itself
    assert truth
    for t in truth:
        assert len(t.received_labels) == len(t.received_planes)
        assert all(0 <= label < 2**20 for label in t.received_labels)


@settings(max_examples=60, deadline=None)
@given(config=chain_configs)
def test_quoted_stacks_match_truth(config):
    """Every RFC 4950 quote equals the stack the router truly received."""
    chain = build_chain(config)
    prober = TntProber(chain.engine, reveal_success_rate=0.0, seed=1)
    trace = prober.trace(chain.vp.router_id, chain.target)
    truth = {
        t.router_id: t
        for t in chain.engine.truth_walk(
            chain.vp.router_id, chain.target, trace.flow_id
        )
    }
    for hop in trace.hops:
        if not hop.has_lses or hop.truth_router_id not in truth:
            continue
        quoted = tuple(e.label for e in hop.lses)
        assert quoted == truth[hop.truth_router_id].received_labels


@settings(max_examples=60, deadline=None)
@given(config=chain_configs)
def test_detector_segments_well_formed(config):
    """Detected segments never overlap, stay in-bounds, and respect
    per-flag arity regardless of input."""
    chain = build_chain(config)
    prober = TntProber(chain.engine, seed=2)
    trace = prober.trace(chain.vp.router_id, chain.target)
    segments = ArestDetector().detect(trace, {})
    seen: set[int] = set()
    for segment in segments:
        for index in segment.hop_indices:
            assert 0 <= index < len(trace.hops)
            assert index not in seen
            seen.add(index)
        if segment.flag in SEQUENCE_FLAGS:
            assert segment.length >= 2
        else:
            assert segment.length == 1
        # flagged hops carry labels by construction
        for index in segment.hop_indices:
            assert trace.hops[index].has_lses


@settings(max_examples=40, deadline=None)
@given(
    config=chain_configs,
    reveal=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_tnt_reveals_addresses_never_labels(config, reveal):
    """TNT's contract (Sec. 2.2): revealed hops have addresses, no LSEs."""
    chain = build_chain(config)
    prober = TntProber(chain.engine, reveal_success_rate=reveal, seed=3)
    trace = prober.trace(chain.vp.router_id, chain.target)
    for hop in trace.hops:
        if hop.tnt_revealed:
            assert hop.address is not None
            assert hop.lses is None


@settings(max_examples=40, deadline=None)
@given(config=chain_configs)
def test_uniform_tunnels_never_hide_hops(config):
    """With ttl-propagate, every transit router answers some TTL."""
    if not config["propagate"]:
        return
    chain = build_chain(config)
    responders = set()
    for ttl in range(1, 40):
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, ttl
        )
        if reply is None:
            continue
        responders.add(reply.truth_router_id)
        if reply.kind is not ReplyKind.TIME_EXCEEDED:
            break
    assert {r.router_id for r in chain.routers} <= responders
