"""Shared utilities: deterministic randomness and text-table rendering."""

from repro.util.determinism import DeterministicRng, int_hash, unit_hash
from repro.util.tables import format_table

__all__ = ["DeterministicRng", "int_hash", "unit_hash", "format_table"]
