"""Unit tests for stack-size statistics (Fig. 9 aggregations)."""

from collections import Counter

from repro.analysis.stack_stats import (
    StackSizeRow,
    aggregate_share_at_least,
    stack_size_rows,
)


def row(as_id, context, counts):
    return StackSizeRow(
        as_id=as_id,
        name=f"AS{as_id}",
        context=context,
        depth_counts=tuple(sorted(counts.items())),
    )


class TestStackSizeRow:
    def test_total(self):
        r = row(1, "strong-sr", {1: 10, 2: 5, 3: 5})
        assert r.total() == 20

    def test_share_at_least(self):
        r = row(1, "strong-sr", {1: 10, 2: 5, 3: 5})
        assert r.share_at_least(2) == 0.5
        assert r.share_at_least(3) == 0.25
        assert r.share_at_least(1) == 1.0

    def test_empty_row(self):
        r = row(1, "strong-sr", {})
        assert r.total() == 0
        assert r.share_at_least(2) == 0.0


class TestAggregation:
    def test_aggregate_weighted_by_counts(self):
        rows = [
            row(1, "strong-sr", {1: 90, 2: 10}),
            row(2, "strong-sr", {2: 100}),
        ]
        # 110 deep of 200 total
        assert aggregate_share_at_least(rows, "strong-sr", 2) == 0.55

    def test_context_filter(self):
        rows = [
            row(1, "strong-sr", {2: 10}),
            row(1, "mpls-lso", {1: 10}),
        ]
        assert aggregate_share_at_least(rows, "strong-sr", 2) == 1.0
        assert aggregate_share_at_least(rows, "mpls-lso", 2) == 0.0

    def test_empty(self):
        assert aggregate_share_at_least([], "strong-sr", 2) == 0.0


class TestFromCampaign:
    def test_rows_paired_per_as(self, small_portfolio_results):
        rows = stack_size_rows(small_portfolio_results)
        assert len(rows) == 2 * len(small_portfolio_results)
        contexts = Counter(r.context for r in rows)
        assert contexts["strong-sr"] == contexts["mpls-lso"]

    def test_esnet_strong_context_deep(self, small_portfolio_results):
        rows = stack_size_rows(small_portfolio_results)
        esnet = next(
            r for r in rows if r.as_id == 46 and r.context == "strong-sr"
        )
        assert esnet.share_at_least(2) > 0.3  # service SIDs everywhere
