"""Ablation -- minimum run length for the consecutive flags.

The paper fires CVR/CO at two matching hops, backed by the 1/N^(k-1)
coincidence argument.  Requiring longer runs trades recall for an even
lower false-positive ceiling; this ablation quantifies the recall side
on real campaign traces and the FP side analytically.
"""

from repro.core.detector import ArestDetector
from repro.core.flags import SEQUENCE_FLAGS, cvr_false_positive_probability
from repro.core.pipeline import ArestPipeline
from repro.util.tables import format_table

from benchmarks.conftest import emit


def _consecutive(result, min_run: int) -> int:
    pipeline = ArestPipeline(ArestDetector(min_run_length=min_run))
    analysis = pipeline.analyze_as(
        result.spec.asn, result.dataset.traces, result.fingerprints
    )
    return sum(analysis.flag_counts()[f] for f in SEQUENCE_FLAGS)


def test_bench_ablation_run_length(benchmark, portfolio_results):
    result = portfolio_results[15]  # Microsoft

    k2 = benchmark.pedantic(
        lambda: _consecutive(result, 2), rounds=1, iterations=1
    )
    k3 = _consecutive(result, 3)
    k4 = _consecutive(result, 4)

    emit(
        format_table(
            ["min run length", "CVR+CO segments", "P(coincidence)"],
            [
                (2, k2, f"{cvr_false_positive_probability(2):.1e}"),
                (3, k3, f"{cvr_false_positive_probability(3):.1e}"),
                (4, k4, f"{cvr_false_positive_probability(4):.1e}"),
            ],
            title="Ablation -- minimum consecutive-run length (AS#15)",
        )
    )

    # Shape: recall decays with the threshold while the analytic FP
    # probability collapses; k=2 already sits at ~1e-6, which is the
    # paper's justification for stopping there.
    assert k2 >= k3 >= k4
    assert k2 > 0
    assert cvr_false_positive_probability(2) < 1e-5
