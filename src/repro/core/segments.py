"""Detected SR-MPLS segment records.

"A segment, in this context, is a contiguous sequence of hops --
excluding the source router -- that has raised one of our detection
flags." (Sec. 4)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flags import Flag, SIGNAL_STRENGTH
from repro.netsim.addressing import IPv4Address


@dataclass(frozen=True, slots=True)
class DetectedSegment:
    """One flagged SR-MPLS segment inside one trace.

    ``hop_indices`` points into the trace's hop tuple; consecutive flags
    cover >= 2 hops, stack flags exactly one.
    """

    flag: Flag
    hop_indices: tuple[int, ...]
    addresses: tuple[IPv4Address, ...]
    #: top (active) label observed at each hop
    top_labels: tuple[int, ...]
    #: quoted stack depth at each hop
    stack_depths: tuple[int, ...]
    #: True when the consecutive run needed suffix matching (CVR/CO only)
    suffix_based: bool = False

    def __post_init__(self) -> None:
        lengths = {
            len(self.hop_indices),
            len(self.addresses),
            len(self.top_labels),
            len(self.stack_depths),
        }
        if len(lengths) != 1:
            raise ValueError("per-hop tuples must have equal lengths")
        if not self.hop_indices:
            raise ValueError("a segment needs at least one hop")
        if self.flag in (Flag.CVR, Flag.CO) and len(self.hop_indices) < 2:
            raise ValueError(f"{self.flag} segments need >= 2 hops")
        if self.flag in (Flag.LSVR, Flag.LVR, Flag.LSO) and len(
            self.hop_indices
        ) != 1:
            raise ValueError(f"{self.flag} segments are single-hop")
        if any(
            b - a != 1
            for a, b in zip(self.hop_indices, self.hop_indices[1:])
        ):
            raise ValueError("segment hops must be contiguous")

    @classmethod
    def trusted(
        cls,
        flag: Flag,
        hop_indices: tuple[int, ...],
        addresses: tuple[IPv4Address, ...],
        top_labels: tuple[int, ...],
        stack_depths: tuple[int, ...],
        suffix_based: bool = False,
    ) -> "DetectedSegment":
        """Construct without re-validating the ``__post_init__`` invariants.

        For batch builders whose construction guarantees them (the
        columnar detector derives every tuple from one contiguous hop
        range, so the length/contiguity/arity checks hold by
        construction); the differential suite enforces equality with
        validated object-path segments.  Everyone else should use the
        normal constructor.
        """
        segment = object.__new__(cls)
        set_ = object.__setattr__
        set_(segment, "flag", flag)
        set_(segment, "hop_indices", hop_indices)
        set_(segment, "addresses", addresses)
        set_(segment, "top_labels", top_labels)
        set_(segment, "stack_depths", stack_depths)
        set_(segment, "suffix_based", suffix_based)
        return segment

    @property
    def length(self) -> int:
        """Hops in this segment."""
        return len(self.hop_indices)

    @property
    def signal_strength(self) -> int:
        """The flag's star rating (Sec. 4)."""
        return SIGNAL_STRENGTH[self.flag]

    @property
    def max_stack_depth(self) -> int:
        """Deepest quoted stack inside the segment."""
        return max(self.stack_depths)

    def key(self) -> tuple:
        """Deduplication key: the same segment observed through several
        traces counts once (the paper reports *distinct* segments)."""
        return (self.flag, self.addresses, self.top_labels)
