"""Tests for the TNT prober: annotation and hidden-tunnel revelation."""

from repro.probing.tnt import TntProber

from tests.conftest import TARGET_ASN, ChainNetwork


class TestAnnotation:
    def test_truth_asn_attached(self, sr_chain):
        tr = TntProber(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        in_as = [h for h in tr.hops if h.truth_asn == TARGET_ASN]
        assert len(in_as) == 6  # 5 routers + destination

    def test_truth_planes_on_labeled_hops(self, sr_chain):
        tr = TntProber(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        for hop in tr.labeled_hops():
            assert hop.truth_planes[0] == "sr"

    def test_destination_reply_carries_no_planes(self, sr_chain):
        tr = TntProber(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        assert tr.hops[-1].destination_reply
        assert tr.hops[-1].truth_planes == ()

    def test_ingress_hop_unlabeled_truth(self, sr_chain):
        tr = TntProber(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        first_in_as = next(h for h in tr.hops if h.truth_asn == TARGET_ASN)
        assert first_in_as.truth_planes == ()  # the pusher received IP


class TestRevelation:
    def test_invisible_tunnel_revealed(self):
        chain = ChainNetwork(propagate=False, rfc4950=False)
        tr = TntProber(chain.engine, reveal_success_rate=1.0).trace(
            chain.vp.router_id, chain.target
        )
        revealed = [h for h in tr.hops if h.tnt_revealed]
        assert revealed
        # Revealed hops carry addresses but never LSEs (Sec. 2.2).
        assert all(h.address is not None for h in revealed)
        assert all(h.lses is None for h in revealed)
        assert all(not h.truth_uniform for h in revealed)

    def test_revelation_can_fail(self):
        chain = ChainNetwork(propagate=False, rfc4950=False)
        tr = TntProber(chain.engine, reveal_success_rate=0.0).trace(
            chain.vp.router_id, chain.target
        )
        assert not any(h.tnt_revealed for h in tr.hops)

    def test_no_revelation_on_explicit_tunnels(self, sr_chain):
        tr = TntProber(sr_chain.engine, reveal_success_rate=1.0).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        assert not any(h.tnt_revealed for h in tr.hops)

    def test_revealed_hops_inserted_in_path_order(self):
        chain = ChainNetwork(length=6, propagate=False, rfc4950=False)
        tr = TntProber(chain.engine, reveal_success_rate=1.0).trace(
            chain.vp.router_id, chain.target
        )
        truth = chain.engine.truth_walk(
            chain.vp.router_id, chain.target, tr.flow_id
        )
        order = {t.router_id: i for i, t in enumerate(truth)}
        positions = [
            order[h.truth_router_id]
            for h in tr.hops
            if h.truth_router_id in order
        ]
        assert positions == sorted(positions)

    def test_invalid_reveal_rate(self, sr_chain):
        import pytest

        with pytest.raises(ValueError):
            TntProber(sr_chain.engine, reveal_success_rate=1.5)
