"""Fig. 16 -- MPLS label-range occurrences across ASes.

The paper: observed 20-bit labels skew heavily toward low values (tens
of thousands or less, very few above 100,000), which inherently boosts
the chance a label lands inside a known SR range.
"""

from repro.analysis.labels import (
    LABEL_BUCKETS,
    label_bucket_rows,
    low_label_share,
    share_in_sr_ranges,
)
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig16_label_ranges(benchmark, portfolio_results):
    rows = benchmark(lambda: label_bucket_rows(portfolio_results))
    bucket_names = [f"{lo // 1000}k-{hi // 1000}k" for lo, hi in LABEL_BUCKETS]
    table = [
        (f"AS#{r.as_id}", *(r.bucket_counts))
        for r in rows
        if r.total > 0
    ]
    emit(
        format_table(
            ["AS", *bucket_names],
            table,
            title="Fig. 16 -- label occurrences per range bucket",
        )
    )
    low = low_label_share(rows, cutoff=100_000)
    sr = share_in_sr_ranges(rows)
    emit(f"labels below 100k: {low:.1%}; inside Table 1 SR ranges: {sr:.1%}")

    # Shape: strong skew to the low label space; a large share sits in
    # the vendor SR ranges.
    assert low >= 0.5
    assert sr > 0.2
