"""Deterministic campaign shards: (as_id, vp_bucket) probe units.

Paper-scale campaigns cannot treat one AS as the unit of work: a single
large AS probed from 50 vantage points is minutes of wall clock and a
gigabyte of traces, far too coarse for work stealing and far too big to
re-run wholesale after a worker dies.  This module splits every AS's
probing into **shards** -- contiguous buckets of its selected vantage
points -- that are small enough to steal, cheap enough to re-dispatch,
and, crucially, *independent*:

Per-VP purity.  Every trace in this simulator is a pure function of
``(config, as_id, vp, destination)``: the topology derives from
``(seed, as_id)``, target shuffling from ``(seed, vp_id)``, reveal
draws from ``(seed, flow)``; retry state is confined to one prober and
fault state to one injector, and sharded probing scopes **both per
vantage point** (a fresh :class:`~repro.probing.tnt.TntProber` and a
``("vp", as_id, vp_index)``-scoped injector per VP).  A VP therefore
produces byte-identical traces whichever bucket -- whichever *worker*,
whichever *attempt* -- it lands in, which is what makes the campaign's
output invariant under ``--shards``, ``--jobs``, and crash-and-resume.

(Churn is the one plan that breaks per-VP purity -- its schedule
mutates the network under *all* probes in sequence -- so sharded
campaigns refuse it; see :class:`repro.campaign.scale.ScaleCampaign`.)

Each shard streams its traces straight to a **spill file** -- a normal
:meth:`TraceDataset.dump_jsonl` file written through
:func:`~repro.util.atomicio.atomic_writer` -- so probing memory stays
bounded by one trace, not one campaign, and a ``kill -9`` mid-shard
leaves no torn artifact: the spill appears atomically or not at all,
and a re-run replaces it with identical bytes.  Alongside the spill,
each shard reports per-VP trace counts and SHA-256 digests of the
spill's trace lines -- partition-independent facts the checkpoint can
canonicalize regardless of how VPs were bucketed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.campaign.dataset import TraceDataset, _trace_to_json
from repro.netsim.faults import FaultCounters, FaultInjector
from repro.probing.tnt import TntProber
from repro.topogen.anaximander import build_target_list
from repro.topogen.internet import MeasurementNetwork, build_measurement_network
from repro.util.atomicio import atomic_writer
from repro.util.determinism import DeterministicRng
from repro.util.retry import RetryAccounting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.campaign.runner import CampaignRunner


@dataclass(slots=True, frozen=True)
class ShardSpec:
    """One unit of probing work: a bucket of one AS's vantage points.

    ``vp_indices`` index into the AS's *selected* VP list (the
    deterministic ``(seed, as_id)`` sample), not the global fleet, so a
    spec stays meaningful across processes without shipping VP objects.
    """

    as_id: int
    bucket: int
    vp_indices: tuple[int, ...]

    @property
    def key(self) -> tuple[int, int]:
        """The shard's identity in queues, leases and checkpoints."""
        return (self.as_id, self.bucket)

    @property
    def spill_name(self) -> str:
        """Canonical spill file name (stable across runs and workers)."""
        return f"as{self.as_id:06d}-b{self.bucket:03d}.jsonl"


def shard_plan(
    as_ids: Iterable[int], vps_per_as: int, vps_per_shard: int
) -> list[ShardSpec]:
    """Split a campaign into its deterministic shard list.

    Buckets are contiguous ``vps_per_shard``-sized slices of each AS's
    selected-VP index range, in ``(as_id, bucket)`` order -- the same
    plan on every run, whatever executes it.
    """
    if vps_per_as < 1:
        raise ValueError("vps_per_as must be >= 1")
    if vps_per_shard < 1:
        raise ValueError("vps_per_shard must be >= 1")
    vps_per_shard = min(vps_per_shard, vps_per_as)
    plan: list[ShardSpec] = []
    for as_id in as_ids:
        for bucket, start in enumerate(
            range(0, vps_per_as, vps_per_shard)
        ):
            plan.append(
                ShardSpec(
                    as_id=as_id,
                    bucket=bucket,
                    vp_indices=tuple(
                        range(start, min(start + vps_per_shard, vps_per_as))
                    ),
                )
            )
    return plan


@dataclass(slots=True)
class VpProbe:
    """Partition-independent summary of one VP's probing.

    The trace count and line digest describe *what the VP produced*,
    never *which shard produced it* -- the invariants the checkpoint
    canonicalizes so its bytes match across every ``--shards`` value.
    """

    vp_index: int
    vp_id: str
    traces: int
    sha256: str
    retry_accounting: RetryAccounting
    fault_counters: FaultCounters

    def as_dict(self) -> dict:
        return {
            "vp_index": self.vp_index,
            "vp_id": self.vp_id,
            "traces": self.traces,
            "sha256": self.sha256,
            "retry_accounting": self.retry_accounting.as_dict(),
            "fault_counters": self.fault_counters.as_dict(),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "VpProbe":
        return cls(
            vp_index=int(record["vp_index"]),
            vp_id=str(record["vp_id"]),
            traces=int(record["traces"]),
            sha256=str(record["sha256"]),
            retry_accounting=RetryAccounting.from_dict(
                record.get("retry_accounting", {})
            ),
            fault_counters=FaultCounters.from_dict(
                record.get("fault_counters", {})
            ),
        )


@dataclass(slots=True)
class ShardProbeRecord:
    """What one completed shard banked: spill location + per-VP facts."""

    as_id: int
    bucket: int
    spill: str
    vps: list[VpProbe]

    @property
    def key(self) -> tuple[int, int]:
        return (self.as_id, self.bucket)

    def as_dict(self) -> dict:
        return {
            "spill": self.spill,
            "vps": [vp.as_dict() for vp in self.vps],
        }

    @classmethod
    def from_dict(cls, as_id: int, bucket: int, record: dict) -> "ShardProbeRecord":
        return cls(
            as_id=as_id,
            bucket=bucket,
            spill=str(record["spill"]),
            vps=[VpProbe.from_dict(vp) for vp in record.get("vps", ())],
        )


@dataclass(slots=True)
class ShardContext:
    """Per-AS scaffolding shared by that AS's shards within a worker.

    Building the topology is the expensive part of a shard, and every
    bucket of the same AS needs the *same* network (topology must be a
    function of the AS, never of the bucket).  Workers cache one
    context per AS; the RSS watchdog sheds the cache under pressure.
    """

    spec: object
    vps: list
    net: MeasurementNetwork
    targets: list


def build_shard_context(
    runner: "CampaignRunner", as_id: int
) -> ShardContext:
    """Build (deterministically) everything a shard of ``as_id`` needs."""
    spec = runner.portfolio.spec(as_id)
    vps = runner._select_vps(as_id)
    net = build_measurement_network(
        spec, [vp.vp_id for vp in vps], seed=runner.seed
    )
    targets = list(
        build_target_list(
            net,
            per_prefix=runner.per_prefix,
            limit=runner.targets_per_as,
            seed=runner.seed,
        ).addresses
    )
    return ShardContext(spec=spec, vps=vps, net=net, targets=targets)


def probe_shard(
    runner: "CampaignRunner",
    context: ShardContext,
    shard: ShardSpec,
    spill_path: str | Path,
    heartbeat=None,
    telemetry=None,
) -> ShardProbeRecord:
    """Probe one shard, streaming traces to its spill file.

    Memory holds one trace at a time: each trace is serialized,
    written, digested and dropped.  The spill carries the standard
    dataset header so every downstream reader
    (:meth:`TraceDataset.iter_jsonl`, ``arest detect``) takes it as-is.

    The write is atomic: a crash at any instant leaves either no spill
    or the complete previous one, and the checkpoint line for this
    shard is only banked by the supervisor *after* this returns -- so
    resume either finds both (skip) or neither (re-run, byte-identical)
    and can never lose or duplicate a trace.

    ``telemetry`` (a :class:`~repro.obs.telemetry.Telemetry` recorder,
    usually trace-context-carrying) gets one ``probe`` span per VP and
    a per-trace latency observation; the traces themselves are pure
    functions of the config, so the spill bytes are identical with or
    without it.
    """
    spill_path = Path(spill_path)
    track = telemetry is not None and telemetry.enabled
    if track:
        clock = telemetry.clock
        # Per-probe seconds pile up in a plain list (pre-bound append)
        # and are batch-binned after the loop -- see AsAccumulator for
        # the same <2% instrumentation-budget trick.
        probe_samples: list[float] = []
        bin_probe = probe_samples.append
    vp_probes: list[VpProbe] = []
    try:
        with atomic_writer(spill_path) as fh:
            header = {
                "kind": "header",
                "target_asn": context.net.target_asn,
                "metadata": {
                    "as_id": str(shard.as_id),
                    "bucket": str(shard.bucket),
                    "seed": str(runner.seed),
                    "vps": ",".join(
                        context.vps[i].vp_id for i in shard.vp_indices
                    ),
                },
            }
            fh.write(json.dumps(header) + "\n")
            for vp_index in shard.vp_indices:
                vp = context.vps[vp_index]
                if heartbeat is not None:
                    # one lease renewal per VP keeps long shards alive
                    heartbeat(f"vp-{vp_index}")
                # Fault scope is the VP, not the AS: injector state
                # (token buckets, blackout clocks) evolves with the
                # probe sequence, and only a per-VP sequence is
                # invariant under re-bucketing.
                injector = (
                    FaultInjector(runner.fault_plan, "vp", shard.as_id, vp_index)
                    if runner.fault_plan.active
                    else None
                )
                context.net.engine.faults = injector
                # Fresh prober per VP for the same reason: retry
                # accounting and any per-prober state stay VP-scoped.
                prober = TntProber(
                    context.net.engine,
                    max_ttl=runner.max_ttl,
                    reveal_success_rate=runner.reveal_success_rate,
                    seed=runner.seed,
                    retry=runner.retry,
                )
                vp_router = context.net.vantage_points[vp.vp_id]
                rng = DeterministicRng("shuffle", runner.seed, vp.vp_id)
                shuffled = list(context.targets)
                rng.shuffle(shuffled)
                digest = hashlib.sha256()
                count = 0
                if track:
                    with telemetry.span("probe", vp=vp.vp_id):
                        for destination in shuffled:
                            tick = clock()
                            trace = prober.trace(
                                vp_router, destination, vp_name=vp.vp_id
                            )
                            bin_probe(clock() - tick)
                            line = json.dumps(_trace_to_json(trace)) + "\n"
                            fh.write(line)
                            digest.update(line.encode("utf-8"))
                            count += 1
                else:
                    for destination in shuffled:
                        trace = prober.trace(
                            vp_router, destination, vp_name=vp.vp_id
                        )
                        line = json.dumps(_trace_to_json(trace)) + "\n"
                        fh.write(line)
                        digest.update(line.encode("utf-8"))
                        count += 1
                vp_probes.append(
                    VpProbe(
                        vp_index=vp_index,
                        vp_id=vp.vp_id,
                        traces=count,
                        sha256=digest.hexdigest(),
                        retry_accounting=RetryAccounting.from_dict(
                            prober.accounting.as_dict()
                        ),
                        fault_counters=(
                            FaultCounters.from_dict(
                                injector.counters.as_dict()
                            )
                            if injector is not None
                            else FaultCounters()
                        ),
                    )
                )
    finally:
        context.net.engine.faults = None
        if track and probe_samples:
            telemetry.histogram("probe").observe_many(probe_samples)
    return ShardProbeRecord(
        as_id=shard.as_id,
        bucket=shard.bucket,
        spill=spill_path.name,
        vps=vp_probes,
    )


def merged_dataset(
    target_asn: int,
    metadata: dict[str, str],
    spill_paths: list[Path],
) -> TraceDataset:
    """Merge one AS's spills (in bucket order) into an analysis dataset.

    Bucket order concatenates VPs in ascending selected-VP order, so
    the merged trace sequence equals what a single unsharded probe loop
    over the same VPs would have produced.  Memory is bounded by one
    AS, never the campaign -- the streaming reader feeds it line by
    line.
    """
    dataset = TraceDataset(target_asn=target_asn, metadata=dict(metadata))
    for path in spill_paths:
        for trace in TraceDataset.iter_jsonl(path):
            dataset.add(trace)
    return dataset
