"""Tests for intra-AS topology generation."""

import networkx as nx
import pytest

from repro.netsim.topology import Network, RouterRole
from repro.topogen.intra import build_intra_as


def build(n_core=10, n_edge=4, n_border=3, seed=7):
    net = Network()
    topo = build_intra_as(
        net, 65_010, n_core=n_core, n_edge=n_edge, n_border=n_border,
        seed=seed,
    )
    return net, topo


class TestShape:
    def test_counts(self):
        net, topo = build()
        assert len(topo.core) == 10
        assert len(topo.edges) == 4
        assert len(topo.borders) == 3
        assert len(topo.prefixes) == 4

    def test_roles(self):
        net, topo = build()
        assert all(r.role is RouterRole.CORE for r in topo.core)
        assert all(r.role is RouterRole.EDGE for r in topo.edges)
        assert all(r.role is RouterRole.BORDER for r in topo.borders)

    def test_connected(self):
        net, topo = build()
        assert nx.is_connected(net.to_graph())

    def test_core_ring_present(self):
        net, topo = build()
        for i in range(len(topo.core)):
            a = topo.core[i].router_id
            b = topo.core[(i + 1) % len(topo.core)].router_id
            assert net.link_between(a, b) is not None

    def test_edges_announce_prefixes(self):
        net, topo = build()
        for prefix, edge in zip(topo.prefixes, topo.edges):
            assert net.originating_router(prefix.address_at(1)) == (
                edge.router_id
            )

    def test_borders_dual_homed(self):
        net, topo = build()
        for border in topo.borders:
            assert len(net.neighbors(border.router_id)) == 2

    def test_border_edge_separation(self):
        """Borders attach near ring position 0, PEs on the far side, so
        border->PE paths cross several core hops (label runs >= 3)."""
        from repro.netsim.igp import ShortestPaths

        net, topo = build(n_core=12)
        igp = ShortestPaths(net)
        lengths = [
            len(igp.path(b.router_id, e.router_id)) - 1
            for b in topo.borders
            for e in topo.edges
        ]
        assert sum(lengths) / len(lengths) >= 3

    def test_no_announce_option(self):
        net = Network()
        topo = build_intra_as(net, 65_010, 4, 2, 1, announce=False)
        assert topo.prefixes == []

    def test_deterministic(self):
        net_a, topo_a = build(seed=3)
        net_b, topo_b = build(seed=3)
        assert net_a.num_links == net_b.num_links
        assert [r.name for r in topo_a.all_routers()] == [
            r.name for r in topo_b.all_routers()
        ]

    def test_minimum_core(self):
        net = Network()
        with pytest.raises(ValueError):
            build_intra_as(net, 65_010, 0, 1, 1)

    def test_single_core_works(self):
        net = Network()
        topo = build_intra_as(net, 65_010, 1, 1, 1)
        assert nx.is_connected(net.to_graph())


class TestPopTopology:
    def _build(self, n_core=12, seed=5):
        import networkx as nx
        from repro.topogen.intra import build_pop_intra_as

        net = Network()
        topo = build_pop_intra_as(
            net, 65_011, n_core=n_core, n_edge=4, n_border=2, seed=seed
        )
        return net, topo

    def test_counts_and_roles(self):
        net, topo = self._build()
        assert len(topo.core) == 12
        assert len(topo.edges) == 4
        assert len(topo.borders) == 2
        assert all(r.role is RouterRole.CORE for r in topo.core)

    def test_connected(self):
        import networkx as nx

        net, topo = self._build()
        assert nx.is_connected(net.to_graph())

    def test_pop_pairs_linked(self):
        net, topo = self._build()
        # routers named pop<k>-p0 / pop<k>-p1 share an intra-PoP link
        by_pop = {}
        for router in topo.core:
            pop = router.name.split("-")[1]
            by_pop.setdefault(pop, []).append(router)
        for routers in by_pop.values():
            for a, b in zip(routers, routers[1:]):
                assert net.link_between(a.router_id, b.router_id)

    def test_border_pe_separation(self):
        from repro.netsim.igp import ShortestPaths

        net, topo = self._build(n_core=16)
        igp = ShortestPaths(net)
        lengths = [
            len(igp.path(b.router_id, e.router_id)) - 1
            for b in topo.borders
            for e in topo.edges
        ]
        assert sum(lengths) / len(lengths) >= 3

    def test_single_pop_degenerate(self):
        import networkx as nx
        from repro.topogen.intra import build_pop_intra_as

        net = Network()
        topo = build_pop_intra_as(
            net, 65_011, n_core=2, n_edge=1, n_border=1, seed=1
        )
        assert nx.is_connected(net.to_graph())

    def test_deterministic(self):
        net_a, topo_a = self._build(seed=9)
        net_b, topo_b = self._build(seed=9)
        assert net_a.num_links == net_b.num_links

    def test_campaign_runs_on_pop_style(self):
        from dataclasses import replace

        from repro.campaign import CampaignRunner
        from repro.topogen.portfolio import Portfolio, default_portfolio

        base = default_portfolio()
        spec = base.spec(28)
        pop_spec = replace(
            spec, scenario=replace(spec.scenario, topology_style="pop")
        )
        others = tuple(
            s if s.as_id != 28 else pop_spec for s in base
        )
        runner = CampaignRunner(
            portfolio=Portfolio(others),
            seed=1,
            vps_per_as=2,
            targets_per_as=10,
        )
        result = runner.run_as(28)
        assert result.analysis.has_sr_evidence()
