"""Ablation -- fingerprint coverage vs. the CVR/CO split.

The paper's CVR needs a fingerprint; with zero coverage every
consecutive run degrades to CO (what happened at ESnet), while richer
SNMPv3 coverage shifts mass from CO to CVR and unlocks LSVR/LVR.
"""

from repro.campaign import CampaignRunner
from repro.core.flags import Flag
from repro.util.tables import format_table

from benchmarks.conftest import emit

#: AS#31 (KDDI): the fingerprint-rich narrative AS
AS_ID = 31


def _counts(snmp_coverage: float):
    runner = CampaignRunner(
        seed=1, snmp_coverage=snmp_coverage, vps_per_as=3, targets_per_as=18
    )
    result = runner.run_as(AS_ID)
    return result.analysis.flag_counts()


def test_bench_ablation_fingerprints(benchmark):
    full = benchmark.pedantic(lambda: _counts(1.0), rounds=1, iterations=1)
    half = _counts(0.5)
    none = _counts(0.0)

    rows = []
    for name, counts in (("1.0", full), ("0.5", half), ("0.0", none)):
        rows.append(
            (
                name,
                *(counts[f] for f in Flag),
            )
        )
    emit(
        format_table(
            ["SNMP coverage", *(f.name for f in Flag)],
            rows,
            title="Ablation -- fingerprint coverage vs. flag mix (AS#31)",
        )
    )

    # Shape: the consecutive evidence (CVR + CO) is invariant -- it only
    # *reclassifies* between the two flags as coverage changes...
    assert (
        full[Flag.CVR] + full[Flag.CO]
        == none[Flag.CVR] + none[Flag.CO]
    )
    # ...with richer coverage, more runs become vendor-confirmed.
    assert full[Flag.CVR] >= half[Flag.CVR] >= 0
    assert full[Flag.CVR] > 0
    # KDDI still fingerprints via TTL at zero SNMP coverage (its boxes
    # answer ping), so CVR cannot vanish entirely -- but it must not
    # *grow* when SNMP disappears.
    assert none[Flag.CVR] <= full[Flag.CVR]
