"""Tests for the trace dataset container and JSONL round-trips."""

import io
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign.dataset import TraceDataset
from repro.netsim.addressing import IPv4Address
from repro.probing.records import QuotedLse, Trace, TraceHop

from tests.conftest import make_hop, make_trace


def sample_dataset() -> TraceDataset:
    dataset = TraceDataset(target_asn=293, metadata={"seed": "1"})
    dataset.add(
        make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, None),
                make_hop(
                    3,
                    "10.0.0.3",
                    labels=(16_005, 15_101),
                    truth_planes=("sr", "service"),
                ),
                make_hop(4, "10.0.0.4", destination_reply=True),
            ]
        )
    )
    return dataset


class TestContainer:
    def test_views(self):
        dataset = sample_dataset()
        assert len(dataset) == 1
        assert len(dataset.distinct_addresses()) == 3
        assert dataset.vantage_points() == ["test-vp"]
        assert len(dataset.traces_from_vp("test-vp")) == 1
        assert dataset.traces_from_vp("nope") == []

    def test_extend(self):
        dataset = sample_dataset()
        dataset.extend(sample_dataset().traces)
        assert len(dataset) == 2


class TestJsonlRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        dataset = sample_dataset()
        path = tmp_path / "traces.jsonl"
        dataset.dump_jsonl(path)
        loaded = TraceDataset.load_jsonl(path)
        assert loaded.target_asn == dataset.target_asn
        assert loaded.metadata == dataset.metadata
        assert loaded.traces == dataset.traces

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace"}\n')
        with pytest.raises(ValueError):
            TraceDataset.load_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            TraceDataset.load_jsonl(path)

    def test_malformed_trace_line_names_file_and_line(self, tmp_path):
        dataset = sample_dataset()
        path = tmp_path / "traces.jsonl"
        dataset.dump_jsonl(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10] + "<<GARBAGE>>"  # first trace, line 2
        path.write_text("\n".join(lines) + "\n")

        with pytest.raises(ValueError) as excinfo:
            TraceDataset.load_jsonl(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "line 2" in message
        assert isinstance(excinfo.value.__cause__, json.JSONDecodeError)

    def test_malformed_header_names_file_and_line_one(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError) as excinfo:
            TraceDataset.load_jsonl(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "line 1" in message

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ttl=st.integers(min_value=1, max_value=40),
        label=st.integers(min_value=0, max_value=2**20 - 1),
        lse_ttl=st.integers(min_value=0, max_value=255),
        revealed=st.booleans(),
        pipe=st.booleans(),
    )
    def test_hop_roundtrip_property(
        self, tmp_path, ttl, label, lse_ttl, revealed, pipe
    ):
        hop = TraceHop(
            probe_ttl=ttl,
            address=IPv4Address.from_string("192.0.2.9"),
            rtt_ms=1.25,
            reply_ip_ttl=200,
            lses=(
                QuotedLse(
                    label=label, tc=0, bottom_of_stack=True, ttl=lse_ttl
                ),
            ),
            tnt_revealed=revealed,
            truth_router_id=17,
            truth_asn=293,
            truth_planes=("sr",),
            truth_uniform=not pipe,
        )
        trace = Trace(
            vp="v",
            vp_router_id=0,
            destination=IPv4Address.from_string("192.0.2.1"),
            flow_id=1,
            hops=(hop,),
            reached=False,
        )
        dataset = TraceDataset(target_asn=293, traces=[trace])
        path = tmp_path / "prop.jsonl"
        dataset.dump_jsonl(path)
        assert TraceDataset.load_jsonl(path).traces[0] == trace
