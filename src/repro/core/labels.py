"""Label sequence matching for the consecutive flags (CVR / CO).

With homogeneous SRGBs a node SID keeps the exact same 20-bit value
across every hop of the segment.  With *heterogeneous* SRGBs each hop
re-maps the SID into its downstream neighbour's block, so the value
changes -- but since the SID index is preserved, the labels share their
low-order part whenever the blocks are round-base aligned.  AReST
approximates this with decimal-suffix matching (footnote 4 of the
paper: "the flag is also triggered if two labels share a common suffix
(e.g., 16,005 -> 13,005)").
"""

from __future__ import annotations

from functools import lru_cache

#: how many trailing decimal digits must agree for a suffix match
SUFFIX_DIGITS = 3


def suffix_match(a: int, b: int, digits: int = SUFFIX_DIGITS) -> bool:
    """True when two *different* labels share their last ``digits``
    decimal digits (the differing-SRGB case)."""
    if a == b:
        return False
    if digits <= 0:
        raise ValueError("digits must be positive")
    modulus = 10**digits
    return a % modulus == b % modulus


@lru_cache(maxsize=65536)
def _suffix_match_default(a: int, b: int) -> bool:
    """Memoized :func:`suffix_match` at the default digit count.

    Callers guarantee ``a != b``, so this is the pure modulus compare.
    A campaign's label vocabulary is tiny next to its hop count, so
    each distinct differing pair pays the arithmetic once (the
    benchmark records the delta as ``seq_match_cache_delta_pct``).
    """
    modulus = 10**SUFFIX_DIGITS
    return a % modulus == b % modulus


def sequence_match(a: int, b: int) -> bool:
    """Do two top labels on consecutive hops continue one SR segment?

    Either identical (same-SRGB deployments, the overwhelmingly common
    case: the paper measured only 0.01% suffix-based matches) or
    suffix-matched (heterogeneous SRGBs).  The identical case is a bare
    int compare -- deliberately outside the memo so the dominant path
    never pays a cache probe; only the suffix arithmetic is cached.
    """
    return a == b or _suffix_match_default(a, b)


def run_is_suffix_based(labels: tuple[int, ...]) -> bool:
    """Did this (already matched) run rely on suffix matching at all?"""
    return any(labels[i] != labels[i + 1] for i in range(len(labels) - 1))
