"""Supervised task execution: bounded pool, deadlines, crash containment.

The paper's campaign probes 60 ASes from 50 vantage points; at that
scale the execution plane fails in ways the data plane never does -- a
worker wedges inside a stage, a box reboots and SIGKILLs the process,
an operator Ctrl-Cs a half-done portfolio.  This module supervises a
batch of independent tasks so those events are bounded in time and
isolated in space:

- **bounded process pool** -- at most ``jobs`` worker processes are
  alive at once, one fresh process per task (no pool reuse, so one
  task's corpse cannot poison the next task's interpreter);
- **per-task deadline** -- a worker that exceeds ``timeout`` seconds of
  wall clock is SIGKILLed and the task marked ``TIMEOUT``;
- **heartbeat watchdog** -- the supervisor polls every
  ``watch_interval`` seconds; workers stream stage heartbeats, and with
  ``heartbeat_timeout`` set a worker silent for that long is declared
  hung before its overall deadline expires.  A worker that dies without
  delivering a result (SIGKILL, segfault, OOM kill) is detected by its
  exit code and marked ``CRASH``;
- **one-shot re-dispatch, then quarantine** -- a deadline or crash
  victim is re-dispatched exactly once (``max_redispatch``); a second
  strike trips the per-task circuit breaker and the task is quarantined
  instead of burning the pool forever;
- **graceful shutdown** -- a :class:`GracefulShutdown` flag (SIGINT or
  SIGTERM) stops dispatch, drains in-flight workers (deadlines still
  enforced) and returns a partial result marked ``interrupted``.

Determinism: the supervisor imposes *no ordering of its own* on
results -- outcomes are keyed, completion order is surfaced only
through the ``on_complete`` callback, and callers that assemble
reports in submission order get byte-identical output for any ``jobs``
as long as each task is itself deterministic.  ``jobs=1`` runs every
task in-process (no subprocess, no pickling) so single-job behaviour
is exactly the plain loop it replaces.
"""

from __future__ import annotations

import enum
import logging
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Sequence

logger = logging.getLogger(__name__)

#: task callable: ``fn(payload, heartbeat)`` where ``heartbeat(note)``
#: may be called freely to prove liveness / report the current stage
TaskFn = Callable[[Any, Callable[[str], None]], Any]


class TaskStatus(enum.Enum):
    """How one supervised task ended."""

    OK = "ok"
    #: the task function raised (deterministic failure; never re-dispatched)
    ERROR = "error"
    #: the worker exceeded its deadline (or went silent) and was killed
    TIMEOUT = "timeout"
    #: the worker process died without delivering a result
    CRASH = "crash"


@dataclass(slots=True)
class TaskOutcome:
    """Final state of one task after supervision (and any re-dispatch)."""

    key: Any
    status: TaskStatus
    #: the task function's return value (``OK`` only)
    value: Any = None
    #: error description (``ERROR``/``TIMEOUT``/``CRASH``)
    error: str | None = None
    #: dispatch attempts consumed (> 1 means the task was re-dispatched)
    attempts: int = 1
    #: last heartbeat note received from the worker, if any
    last_stage: str | None = None
    #: supervisor-observed wall-clock seconds per heartbeat stage, for
    #: workers that never returned (``TIMEOUT``/``CRASH``/``ERROR``) --
    #: the post-mortem of where a killed worker spent its life
    stage_seconds: dict[str, float] | None = None


@dataclass(slots=True)
class Quarantine:
    """A poison task: failed its re-dispatch budget, circuit breaker open."""

    key: Any
    #: "timeout", "hung" or "crash"
    reason: str
    attempts: int
    detail: str


@dataclass(slots=True)
class ExecutionResult:
    """Everything :meth:`SupervisedExecutor.run` observed."""

    #: final outcome per task key (tasks never dispatched are absent)
    outcomes: dict[Any, TaskOutcome] = field(default_factory=dict)
    #: circuit-broken tasks (their final outcome is also in ``outcomes``)
    quarantined: dict[Any, Quarantine] = field(default_factory=dict)
    #: True when a shutdown request cut the batch short
    interrupted: bool = False


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a drain request.

    Inside the block the first signal sets :attr:`requested` instead of
    raising, so the supervisor can stop dispatching, drain in-flight
    workers and flush durable state.  A second SIGINT restores the
    default handler's behaviour (KeyboardInterrupt) for operators who
    really mean it.  Previous handlers are restored on exit; when not
    running in the main thread (where ``signal`` refuses handlers) the
    manager degrades to a plain manual flag.
    """

    def __init__(self) -> None:
        self.requested = False
        self._previous: dict[int, Any] = {}
        self._strikes = 0

    def __call__(self) -> bool:
        return self.requested

    def request(self) -> None:
        """Request shutdown programmatically (tests, embedding)."""
        self.requested = True

    def _handle(self, signum: int, frame) -> None:
        self.requested = True
        self._strikes += 1
        logger.warning(
            "received %s: draining in-flight work (repeat to force)",
            signal.Signals(signum).name,
        )
        if self._strikes >= 2:
            raise KeyboardInterrupt

    def __enter__(self) -> "GracefulShutdown":
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()


def _child_entry(fn: TaskFn, payload: Any, conn: Connection) -> None:
    """Worker-side wrapper: run ``fn`` and stream the result back.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole
    foreground process group) interrupts the *supervisor*, which then
    drains workers instead of losing them mid-write.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass

    def heartbeat(note: str) -> None:
        conn.send(("hb", note))

    try:
        value = fn(payload, heartbeat)
    except BaseException as exc:  # noqa: BLE001 -- report, then die
        try:
            conn.send(("exc", f"{type(exc).__name__}: {exc}"))
            conn.close()
        finally:
            os._exit(1)
    conn.send(("res", value))
    conn.close()
    os._exit(0)


@dataclass(slots=True)
class _Inflight:
    """Supervisor-side state of one live worker."""

    key: Any
    payload: Any
    attempts: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    started: float
    last_beat: float
    last_stage: str | None = None
    #: when the current heartbeat stage began (dispatch time initially)
    stage_started: float = 0.0
    #: observed seconds per completed heartbeat stage
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: result/exception message received, pending process exit
    message: tuple[str, Any] | None = None


def _close_stage(worker: _Inflight, now: float) -> None:
    """Fold the currently-open heartbeat stage into the observed tally."""
    if worker.last_stage is not None:
        worker.stage_seconds[worker.last_stage] = (
            worker.stage_seconds.get(worker.last_stage, 0.0)
            + now
            - worker.stage_started
        )
    worker.stage_started = now


class SupervisedExecutor:
    """Run independent keyed tasks under supervision.

    Parameters
    ----------
    fn:
        The task function, ``fn(payload, heartbeat) -> value``.  With
        ``jobs > 1`` it must be picklable (module-level) and is executed
        in a fresh subprocess per task.
    jobs:
        Maximum concurrent workers.  ``1`` selects the in-process path:
        no subprocess, no pickling, no deadline enforcement -- behaviour
        is exactly a plain sequential loop.
    timeout:
        Per-task wall-clock deadline in seconds (``None`` = unbounded).
    heartbeat_timeout:
        Declare a worker hung when it has been silent this long, even
        before its deadline (``None`` = deadline only).
    watch_interval:
        Supervisor poll cadence in seconds; hung/killed workers are
        detected within roughly one interval.
    max_redispatch:
        How many times a deadline/crash victim is re-dispatched before
        quarantine (default 1: one second chance, then the circuit
        breaker opens).
    """

    def __init__(
        self,
        fn: TaskFn,
        jobs: int = 1,
        timeout: float | None = None,
        heartbeat_timeout: float | None = None,
        watch_interval: float = 0.05,
        max_redispatch: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if watch_interval <= 0:
            raise ValueError("watch_interval must be positive")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        self.fn = fn
        self.jobs = jobs
        self.timeout = timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.watch_interval = watch_interval
        self.max_redispatch = max_redispatch

    # -- public API -----------------------------------------------------------

    def run(
        self,
        tasks: Sequence[tuple[Any, Any]],
        on_complete: Callable[[TaskOutcome], None] | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> ExecutionResult:
        """Supervise ``tasks`` (``(key, payload)`` pairs) to completion.

        ``on_complete`` fires once per task, in completion order, with
        the final outcome (after any re-dispatch).  ``stop`` is polled
        between dispatches; once true, no new task starts, in-flight
        workers drain, and the result is marked interrupted.
        """
        keys = [key for key, _ in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("task keys must be unique")
        if self.jobs == 1:
            return self._run_inprocess(tasks, on_complete, stop)
        return self._run_supervised(tasks, on_complete, stop)

    # -- in-process path (jobs=1) ----------------------------------------------

    def _run_inprocess(
        self,
        tasks: Sequence[tuple[Any, Any]],
        on_complete: Callable[[TaskOutcome], None] | None,
        stop: Callable[[], bool] | None,
    ) -> ExecutionResult:
        result = ExecutionResult()
        beats: list[str] = []
        for key, payload in tasks:
            if stop is not None and stop():
                result.interrupted = True
                break
            beats.clear()
            try:
                value = self.fn(payload, beats.append)
            except KeyboardInterrupt:
                result.interrupted = True
                break
            except Exception as exc:  # noqa: BLE001 -- per-task isolation
                outcome = TaskOutcome(
                    key=key,
                    status=TaskStatus.ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    last_stage=beats[-1] if beats else None,
                )
            else:
                outcome = TaskOutcome(
                    key=key,
                    status=TaskStatus.OK,
                    value=value,
                    last_stage=beats[-1] if beats else None,
                )
            result.outcomes[key] = outcome
            if on_complete is not None:
                on_complete(outcome)
        return result

    # -- supervised path (jobs>1) ----------------------------------------------

    @staticmethod
    def _mp_context():
        """Fork where available (cheap, inherits imports), else spawn."""
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def _run_supervised(
        self,
        tasks: Sequence[tuple[Any, Any]],
        on_complete: Callable[[TaskOutcome], None] | None,
        stop: Callable[[], bool] | None,
    ) -> ExecutionResult:
        ctx = self._mp_context()
        result = ExecutionResult()
        pending: list[tuple[Any, Any, int]] = [
            (key, payload, 1) for key, payload in tasks
        ]
        inflight: dict[Any, _Inflight] = {}
        stopping = False

        def finish(outcome: TaskOutcome) -> None:
            result.outcomes[outcome.key] = outcome
            if on_complete is not None:
                on_complete(outcome)

        try:
            while pending or inflight:
                if not stopping and stop is not None and stop():
                    stopping = True
                    result.interrupted = True
                    pending.clear()
                while pending and len(inflight) < self.jobs:
                    key, payload, attempts = pending.pop(0)
                    inflight[key] = self._dispatch(
                        ctx, key, payload, attempts
                    )
                self._pump(inflight)
                now = time.monotonic()
                for key in list(inflight):
                    worker = inflight[key]
                    settled = self._settle(worker, now, stopping)
                    if settled is None:
                        continue
                    del inflight[key]
                    outcome, requeue = settled
                    if requeue:
                        logger.warning(
                            "task %r %s after %.1fs (attempt %d); "
                            "re-dispatching once",
                            key,
                            outcome.status.value,
                            now - worker.started,
                            worker.attempts,
                        )
                        pending.append(
                            (key, worker.payload, worker.attempts + 1)
                        )
                        continue
                    if outcome is not None:
                        if outcome.status in (
                            TaskStatus.TIMEOUT,
                            TaskStatus.CRASH,
                        ):
                            reason = outcome.status.value
                            if outcome.error and "hung" in outcome.error:
                                reason = "hung"
                            result.quarantined[key] = Quarantine(
                                key=key,
                                reason=reason,
                                attempts=outcome.attempts,
                                detail=outcome.error or "",
                            )
                            logger.warning(
                                "task %r quarantined after %d attempt(s): %s",
                                key,
                                outcome.attempts,
                                outcome.error,
                            )
                        finish(outcome)
        finally:
            for worker in inflight.values():
                self._kill(worker)
        return result

    def _dispatch(
        self, ctx, key: Any, payload: Any, attempts: int
    ) -> _Inflight:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_entry,
            args=(self.fn, payload, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        return _Inflight(
            key=key,
            payload=payload,
            attempts=attempts,
            process=process,
            conn=parent_conn,
            started=now,
            last_beat=now,
            stage_started=now,
        )

    def _pump(self, inflight: dict[Any, _Inflight]) -> None:
        """Drain every ready pipe, blocking at most one watch interval."""
        if not inflight:
            return
        by_conn = {worker.conn: worker for worker in inflight.values()}
        ready = connection_wait(
            list(by_conn), timeout=self.watch_interval
        )
        now = time.monotonic()
        for conn in ready:
            self._drain(by_conn[conn], now)

    @staticmethod
    def _drain(worker: _Inflight, now: float) -> None:
        """Read everything currently in one worker's pipe."""
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                kind, body = worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                return  # worker died mid-send; exit code settles it
            worker.last_beat = now
            if kind == "hb":
                _close_stage(worker, now)
                worker.last_stage = str(body)
            else:  # "res" / "exc"
                worker.message = (kind, body)

    def _settle(
        self, worker: _Inflight, now: float, stopping: bool
    ) -> tuple[TaskOutcome | None, bool] | None:
        """Decide one worker's fate; ``None`` means still running.

        Returns ``(outcome, requeue)``; during shutdown drain victims
        are neither re-queued nor quarantined (the run is interrupted;
        resume will re-attempt them), signalled by ``(None, False)``.
        """
        expired = (
            self.timeout is not None
            and now - worker.started > self.timeout
        )
        if worker.message is None and not worker.process.is_alive():
            # A fast worker may deliver its result and exit between the
            # pump and this liveness check; drain the pipe before
            # judging it by its corpse, or the answer is lost and a
            # healthy task reads as a crash.
            self._drain(worker, now)
        if worker.message is not None:
            # The result beat the deadline even if the exit didn't:
            # never turn a delivered answer into a timeout.
            if worker.process.is_alive():
                if not expired:
                    return None  # exiting momentarily
                self._kill(worker)
            else:
                worker.process.join()
                worker.conn.close()
            kind, body = worker.message
            if kind == "res":
                return (
                    TaskOutcome(
                        key=worker.key,
                        status=TaskStatus.OK,
                        value=body,
                        attempts=worker.attempts,
                        last_stage=worker.last_stage,
                    ),
                    False,
                )
            _close_stage(worker, now)
            return (
                TaskOutcome(
                    key=worker.key,
                    status=TaskStatus.ERROR,
                    error=str(body),
                    attempts=worker.attempts,
                    last_stage=worker.last_stage,
                    stage_seconds=dict(worker.stage_seconds),
                ),
                False,
            )
        hung = (
            self.heartbeat_timeout is not None
            and now - worker.last_beat > self.heartbeat_timeout
        )
        if worker.process.is_alive() and not hung and not expired:
            return None
        if worker.process.is_alive():
            # Deadline or heartbeat breach: contain with SIGKILL.
            self._kill(worker)
            status = TaskStatus.TIMEOUT
            what = "went silent (hung)" if hung and not expired else (
                "exceeded its deadline"
            )
            error = (
                f"worker {what} after "
                f"{now - worker.started:.1f}s in stage "
                f"{worker.last_stage or 'unknown'}"
            )
        else:
            worker.process.join()
            worker.conn.close()
            status = TaskStatus.CRASH
            error = (
                f"worker died without a result (exit code "
                f"{worker.process.exitcode}) in stage "
                f"{worker.last_stage or 'unknown'}"
            )
        _close_stage(worker, now)
        if stopping:
            return (None, False)
        outcome = TaskOutcome(
            key=worker.key,
            status=status,
            error=error,
            attempts=worker.attempts,
            last_stage=worker.last_stage,
            stage_seconds=dict(worker.stage_seconds),
        )
        return (outcome, worker.attempts <= self.max_redispatch)

    @staticmethod
    def _kill(worker: _Inflight) -> None:
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        worker.conn.close()
