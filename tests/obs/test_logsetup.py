"""CLI logging configuration: text and JSON formats."""

import json
import logging

import pytest

from repro.obs.logsetup import JsonLogFormatter, configure_logging


@pytest.fixture(autouse=True)
def _restore_root_logger():
    yield
    # leave the suite's logging exactly as the harness configured it
    root = logging.getLogger()
    for handler in list(root.handlers):
        root.removeHandler(handler)
    logging.basicConfig(force=True)


class TestConfigureLogging:
    def test_sets_level_and_single_handler(self):
        configure_logging("debug", "text")
        root = logging.getLogger()
        assert root.level == logging.DEBUG
        assert len(root.handlers) == 1

    def test_reconfiguring_does_not_stack_handlers(self):
        configure_logging("info", "text")
        configure_logging("warning", "json")
        root = logging.getLogger()
        assert len(root.handlers) == 1
        assert isinstance(root.handlers[0].formatter, JsonLogFormatter)

    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging("chatty")
        with pytest.raises(ValueError, match="log format"):
            configure_logging("info", "xml")


class TestJsonFormatter:
    def _record(self, **kwargs) -> logging.LogRecord:
        defaults = dict(
            name="repro.test",
            level=logging.WARNING,
            pathname=__file__,
            lineno=1,
            msg="worker %s re-dispatched",
            args=("AS#46",),
            exc_info=None,
        )
        defaults.update(kwargs)
        return logging.LogRecord(**defaults)

    def test_single_line_json_with_interpolation(self):
        line = JsonLogFormatter().format(self._record())
        assert "\n" not in line
        payload = json.loads(line)
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.test"
        assert payload["message"] == "worker AS#46 re-dispatched"
        assert isinstance(payload["ts"], float)

    def test_exception_is_embedded(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = self._record(exc_info=sys.exc_info())
        payload = json.loads(JsonLogFormatter().format(record))
        assert "RuntimeError: boom" in payload["exception"]
