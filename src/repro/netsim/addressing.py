"""IPv4 addressing primitives used throughout the simulator.

The simulator manipulates a large number of addresses (the paper's dataset
contains ~1.9 million distinct IPv4 addresses), so addresses are stored as
plain integers wrapped in a tiny value type rather than
:class:`ipaddress.IPv4Address` objects, which are an order of magnitude
heavier to hash and compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

_MAX_IPV4 = 2**32 - 1


def _check_int(value: int) -> None:
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"IPv4 address out of range: {value!r}")


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        _check_int(self.value)

    @classmethod
    def from_string(cls, dotted: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        parts = dotted.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {dotted!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"malformed IPv4 address: {dotted!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``198.51.100.0/24``."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if self.network.value & (self.host_mask()):
            raise ValueError(
                f"host bits set in prefix {self.network}/{self.length}"
            )

    @classmethod
    def from_string(cls, cidr: str) -> "IPv4Prefix":
        """Parse CIDR notation, e.g. ``"198.51.100.0/24"``."""
        address, _, length = cidr.partition("/")
        if not length:
            raise ValueError(f"missing prefix length: {cidr!r}")
        return cls(IPv4Address.from_string(address), int(length))

    def netmask(self) -> int:
        """The prefix's network mask as a 32-bit integer."""
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def host_mask(self) -> int:
        """Bit-complement of the netmask."""
        return ~self.netmask() & 0xFFFFFFFF

    def num_addresses(self) -> int:
        """Addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: IPv4Address) -> bool:
        """True when the address falls inside the prefix."""
        return (address.value & self.netmask()) == self.network.value

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over every address in the prefix (network/broadcast
        included -- the simulator does not reserve them)."""
        base = self.network.value
        for offset in range(self.num_addresses()):
            yield IPv4Address(base + offset)

    def address_at(self, offset: int) -> IPv4Address:
        """The ``offset``-th address of the prefix."""
        if not 0 <= offset < self.num_addresses():
            raise IndexError(f"offset {offset} outside /{self.length}")
        return IPv4Address(self.network.value + offset)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Split into sub-prefixes of ``new_length``."""
        if new_length < self.length:
            raise ValueError("new prefix length must not be shorter")
        step = 1 << (32 - new_length)
        for base in range(
            self.network.value,
            self.network.value + self.num_addresses(),
            step,
        ):
            yield IPv4Prefix(IPv4Address(base), new_length)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"


class PrefixAllocator:
    """Sequentially allocates disjoint sub-prefixes out of a supernet.

    Each simulated AS receives its own address space from a global
    allocator so that interface addresses never collide across ASes, which
    mirrors how the real campaign could rely on address ownership for
    bdrmapIT-style annotation.
    """

    def __init__(self, supernet: IPv4Prefix) -> None:
        self._supernet = supernet
        self._cursor = supernet.network.value
        self._end = supernet.network.value + supernet.num_addresses()

    @property
    def supernet(self) -> IPv4Prefix:
        """The supernet this allocator carves from."""
        return self._supernet

    def allocate(self, length: int) -> IPv4Prefix:
        """Carve the next aligned prefix of the requested length."""
        if length < self._supernet.length:
            raise ValueError("requested prefix larger than supernet")
        size = 1 << (32 - length)
        # Align the cursor to the requested prefix size.
        cursor = (self._cursor + size - 1) & ~(size - 1)
        if cursor + size > self._end:
            raise MemoryError(
                f"supernet {self._supernet} exhausted "
                f"(requested /{length})"
            )
        self._cursor = cursor + size
        return IPv4Prefix(IPv4Address(cursor), length)

    def remaining_addresses(self) -> int:
        """Unallocated address count."""
        return self._end - self._cursor
