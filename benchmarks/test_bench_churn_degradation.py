"""Degradation under live topology churn (network dynamics engine).

The sweep reruns the robustness slice with the dynamics engine active
at increasing intensities: link flaps with IGP reconvergence
transients at RATE, RSVP-TE LSP churn at RATE/2, SR migration waves
at RATE/4 (``ChurnPlan.intensity``).  The headline mirrors the
corruption sweep's: with epoch-stamped walk recordings (stale caches
are never served) and cross-epoch sanitization in front of the
detector, the CVR zero-false-positive guarantee survives low churn --
recall degrades gracefully, precision does not.

The run drops ``BENCH_churn.json`` next to the repo root; the
``churn-degradation-smoke`` CI job regenerates it on every push and
uploads it as an artifact.
"""

import json

from repro.analysis.robustness import (
    degradation_study,
    render_degradation_table,
)
from repro.core.flags import Flag
from repro.util.atomicio import atomic_write_text

from benchmarks.conftest import emit

BENCH_FILENAME = "BENCH_churn.json"

_SLICE = (7, 15, 27, 31, 46)  # one AS per deployment flavour
_LEVELS = (0.0, 0.1, 0.25)
#: levels the zero-FP guarantee is asserted at ("low churn": IGP events
#: at realistic campaign frequency; beyond this reconvergence blackouts
#: dominate the signal and only graceful degradation is claimed)
_LOW_CHURN = 0.1


def test_bench_churn_sweep(benchmark):
    study = benchmark.pedantic(
        lambda: degradation_study(
            churn_levels=_LEVELS,
            as_ids=_SLICE,
            seed=1,
            vps_per_as=3,
            targets_per_as=15,
        ),
        rounds=1,
        iterations=1,
    )
    emit(render_degradation_table(study))

    # the churn-free level IS the baseline: perfect recall everywhere
    for deg in study.level(0.0).per_flag.values():
        assert deg.recall == 1.0
    assert study.level(0.0).quarantined == 0

    for level in study.levels:
        # churn never sinks an AS run
        assert level.failed_ases == 0
        if level.churn <= _LOW_CHURN:
            # the headline guarantee: CVR (and the strong flags
            # generally) never hallucinate under low churn
            assert level.cvr_false_positives == 0
            assert level.strong_false_positives == 0

    # churn costs recall gradually, never catastrophically
    churned = study.level(_LOW_CHURN)
    assert churned.per_flag[Flag.CO].recall > 0.5
    assert churned.confirmed_detected >= 3

    payload = {
        "benchmark": "churn_degradation",
        "as_ids": list(_SLICE),
        "seed": 1,
        "levels": [
            {
                "churn": level.churn,
                "confirmed_detected": level.confirmed_detected,
                "confirmed_total": level.confirmed_total,
                "cvr_false_positives": level.cvr_false_positives,
                "strong_false_positives": level.strong_false_positives,
                "cvr_recall": round(
                    level.per_flag[Flag.CVR].recall, 4
                ) if Flag.CVR in level.per_flag else None,
                "co_recall": round(
                    level.per_flag[Flag.CO].recall, 4
                ) if Flag.CO in level.per_flag else None,
                "quarantined": level.quarantined,
                "failed_ases": level.failed_ases,
            }
            for level in study.levels
        ],
    }
    atomic_write_text(
        BENCH_FILENAME, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(
        f"churn sweep {_LEVELS}: CVR FPs "
        f"{[level.cvr_false_positives for level in study.levels]}, "
        f"confirmed {[level.confirmed_detected for level in study.levels]}"
        f"/{study.levels[0].confirmed_total}"
    )
