"""Differential suite: the columnar core ≡ the object-path detector.

The columnar detector's entire value proposition is *byte-identical
output, orders-of-magnitude cheaper*.  These properties pin both of its
entry points -- the one-row :meth:`ColumnarDetector.detect` bridge and
the whole-campaign :meth:`ColumnarDetector.detect_batch` passes --
against :class:`ArestDetector` over adversarial traces: reserved/ELI
label stacks, suffix families, address-less labeled hops, TNT-revealed
hops, every fingerprint grade, and the mask/filter knobs.
"""

from hypothesis import given, settings, strategies as st

from repro.campaign.dataset import TraceDataset
from repro.core.columnar import ColumnarDetector, TraceBatch
from repro.core.detector import ArestDetector, effective_labels
from repro.core.pipeline import ArestPipeline
from repro.fingerprint.records import Fingerprint
from repro.netsim.addressing import IPv4Address
from repro.netsim.vendors import Vendor

from tests.conftest import make_hop, make_trace, scaled_examples

#: labels exercising every matching regime: identical pairs, decimal
#: suffix families (16005/17005/13005), Table 1 range edges (inside and
#: one past), SRLB values, reserved labels and the ELI (7)
LABEL_POOL = (
    0, 3, 7, 15, 16, 16000, 16005, 17005, 13005, 23999, 24001,
    15500, 48500, 300000, 900500, 2**20 - 1,
)

ADDRESS_POOL = tuple(f"10.0.0.{i}" for i in range(1, 9))

FINGERPRINT_POOL = (
    Fingerprint.none(),
    Fingerprint.from_snmp(Vendor.CISCO),
    Fingerprint.from_snmp(Vendor.HUAWEI),
    Fingerprint.from_snmp(Vendor.ARISTA),
    Fingerprint.from_snmp(Vendor.JUNIPER),  # no Table 1 ranges
    Fingerprint.from_ttl(frozenset({Vendor.CISCO, Vendor.HUAWEI})),
    Fingerprint.from_ttl(frozenset({Vendor.JUNIPER, Vendor.NOKIA})),
)

hop_st = st.tuples(
    st.one_of(st.none(), st.sampled_from(ADDRESS_POOL)),  # address
    st.lists(st.sampled_from(LABEL_POOL), max_size=5),    # quoted stack
    st.booleans(),                                        # tnt_revealed
    st.sampled_from((None, 100, 200)),                    # truth_asn
)
trace_st = st.lists(hop_st, max_size=12)
fingerprints_st = st.builds(
    lambda picks: dict(
        zip(
            (IPv4Address.from_string(a) for a in ADDRESS_POOL),
            picks,
        )
    ),
    st.lists(
        st.sampled_from(FINGERPRINT_POOL),
        min_size=len(ADDRESS_POOL),
        max_size=len(ADDRESS_POOL),
    ),
)


def build_trace(specs):
    hops = []
    for i, (address, labels, tnt_revealed, truth_asn) in enumerate(specs):
        hop = make_hop(
            i + 1,
            address,
            labels=tuple(labels),
            tnt_revealed=tnt_revealed,
        )
        hops.append(hop.with_annotation(truth_asn=truth_asn))
    return make_trace(hops)


class TestDifferential:
    @settings(max_examples=scaled_examples(100), deadline=None)
    @given(
        st.lists(trace_st, max_size=8),
        fingerprints_st,
        st.booleans(),
        st.sampled_from((2, 3)),
    )
    def test_per_trace_and_batch_identical(
        self, specs, fingerprints, suffix_matching, min_run
    ):
        traces = [build_trace(s) for s in specs]
        reference = ArestDetector(
            min_run_length=min_run, suffix_matching=suffix_matching
        )
        columnar = ColumnarDetector(
            min_run_length=min_run, suffix_matching=suffix_matching
        )
        expected = [reference.detect(t, fingerprints) for t in traces]
        # one-row bridge: the pipeline/service entry point
        assert [columnar.detect(t, fingerprints) for t in traces] == expected
        # whole-batch array passes
        batch = TraceBatch.from_traces(traces, fingerprints)
        assert columnar.detect_batch(batch) == expected

    @settings(max_examples=scaled_examples(75), deadline=None)
    @given(trace_st, fingerprints_st, st.sets(st.integers(0, 11)))
    def test_hop_mask_parity(self, specs, fingerprints, mask):
        trace = build_trace(specs)
        reference = ArestDetector()
        columnar = ColumnarDetector()
        expected = reference.detect(trace, fingerprints, hop_mask=mask)
        assert columnar.detect(trace, fingerprints, hop_mask=mask) == expected
        batch = TraceBatch.from_traces([trace], fingerprints)
        assert columnar.detect_batch(batch, hop_masks=[mask]) == [expected]

    @settings(max_examples=scaled_examples(75), deadline=None)
    @given(trace_st, fingerprints_st, st.sampled_from((None, 100, 200)))
    def test_asn_mask_matches_truth_filter(self, specs, fingerprints, asn):
        """``detect_batch(asn=...)`` ≡ the pipeline's in-AS hop mask."""
        trace = build_trace(specs)
        mask = {
            i
            for i, hop in enumerate(trace.hops)
            if asn is None or hop.truth_asn == asn
        }
        expected = ArestDetector().detect(
            trace, fingerprints, hop_mask=mask
        )
        batch = TraceBatch.from_traces([trace], fingerprints)
        detections = ColumnarDetector().detect_batch(batch, asn=asn)
        assert detections == [expected]

    @settings(max_examples=scaled_examples(75), deadline=None)
    @given(trace_st, fingerprints_st)
    def test_hop_filter_parity(self, specs, fingerprints):
        trace = build_trace(specs)
        def keep(hop):
            return hop.probe_ttl % 2 == 1
        expected = ArestDetector().detect(
            trace, fingerprints, hop_filter=keep
        )
        assert (
            ColumnarDetector().detect(trace, fingerprints, hop_filter=keep)
            == expected
        )

    @settings(max_examples=scaled_examples(75), deadline=None)
    @given(trace_st, fingerprints_st)
    def test_row_view_round_trip(self, specs, fingerprints):
        """Batch build -> row view reproduces the per-hop object facts."""
        trace = build_trace(specs)
        batch = TraceBatch.from_traces([trace], fingerprints)
        assert len(batch) == 1
        assert batch.n_hops == len(trace.hops)
        assert batch.trace(0) is trace
        row = batch.row(0)
        assert row.trace is trace
        for i, hop in enumerate(trace.hops):
            effective = effective_labels(hop)
            assert row.tops[i] == (effective[0] if effective else None)
            assert row.depths[i] == len(effective)
            assert row.eligible[i] == (
                bool(effective)
                and hop.address is not None
                and not hop.tnt_revealed
            )
            if row.in_range[i]:
                assert row.eligible[i]  # range bits only on eligible hops


class TestPipelineParity:
    @settings(max_examples=scaled_examples(40), deadline=None)
    @given(st.lists(trace_st, max_size=6), fingerprints_st)
    def test_columnar_pipeline_matches_object_pipeline(
        self, specs, fingerprints
    ):
        traces = [build_trace(s) for s in specs]
        analyses = []
        for columnar in (True, False):
            pipeline = ArestPipeline(columnar=columnar)
            analyses.append(
                pipeline.analyze_as(100, traces, fingerprints)
            )
        fast, reference = analyses
        assert fast.flag_counts() == reference.flag_counts()
        assert fast.segments == reference.segments
        assert fast.traces_total == reference.traces_total
        assert fast.traces_in_as == reference.traces_in_as
        assert fast.traces_quarantined == reference.traces_quarantined
        assert fast.sr_addresses == reference.sr_addresses
        assert fast.mpls_addresses == reference.mpls_addresses
        assert fast.suffix_matched_runs == reference.suffix_matched_runs

    def test_all_quarantined_batch(self):
        """Conflicting-duplicate traces quarantine on both paths."""
        conflicting = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16001,)),
                make_hop(1, "10.0.0.2", labels=(16001,)),
            ]
        )
        traces = [conflicting, conflicting]
        for columnar in (True, False):
            analysis = ArestPipeline(columnar=columnar).analyze_as(
                100, traces, {}
            )
            assert analysis.traces_total == 2
            assert analysis.traces_quarantined == 2
            assert analysis.traces_analyzed == 0
            assert analysis.total_distinct_segments() == 0


class TestEdgeCases:
    def test_empty_batch(self):
        batch = TraceBatch.from_traces([], {})
        assert len(batch) == 0
        assert batch.n_hops == 0
        assert ColumnarDetector().detect_batch(batch) == []

    def test_batch_of_empty_traces(self):
        traces = [make_trace([]), make_trace([])]
        batch = TraceBatch.from_traces(traces, {})
        assert len(batch) == 2
        assert batch.n_hops == 0
        assert ColumnarDetector().detect_batch(batch) == [[], []]

    def test_empty_trace_one_row(self):
        trace = make_trace([])
        assert ColumnarDetector().detect(trace, {}) == []

    def test_address_less_labeled_hop_is_ineligible(self):
        """Satellite fix: a labeled hop without an address must break
        runs instead of reaching (and crashing) classification."""
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16001,)),
                make_hop(2, None, labels=(16001,)),
                make_hop(3, "10.0.0.3", labels=(16001,)),
            ]
        )
        for detector in (ArestDetector(), ColumnarDetector()):
            segments = detector.detect(trace, {})
            # no 3-hop run across the anonymous hop, and the anonymous
            # hop itself is never flagged
            assert all(1 not in s.hop_indices for s in segments)
            assert all(s.length < 3 for s in segments)

    def test_jsonl_streaming_matches_object_path(self, tmp_path):
        """from_jsonl / chunked iter_jsonl reproduce object detection."""
        traces = []
        for k in range(25):
            label = 16000 + (k % 3)
            traces.append(
                make_trace(
                    [
                        make_hop(1, f"10.1.{k}.1", labels=(label,)),
                        make_hop(2, f"10.1.{k}.2", labels=(label,)),
                        make_hop(3, f"10.1.{k}.3"),
                    ]
                )
            )
        dataset = TraceDataset(target_asn=65001, traces=traces)
        path = tmp_path / "archive.jsonl"
        dataset.dump_jsonl(path)
        reference = ArestDetector()
        expected = [
            reference.detect(t, {}) for t in TraceDataset.iter_jsonl(path)
        ]
        columnar = ColumnarDetector()
        whole = TraceBatch.from_jsonl(path)
        assert columnar.detect_batch(whole) == expected
        chunked = []
        for batch in TraceBatch.iter_jsonl(path, chunk=4):
            assert len(batch) <= 4
            chunked.extend(columnar.detect_batch(batch))
        assert chunked == expected
