"""Internet topology generation for the measurement campaign.

- :mod:`repro.topogen.as_types` -- AS roles and confirmation sources.
- :mod:`repro.topogen.portfolio` -- the 60-AS portfolio of Table 5,
  including per-AS deployment scenarios derived from the paper's
  narrative (ESnet all-SR with no fingerprint coverage, Microsoft's
  broad deployment, stub ASes hidden behind invisible tunnels, ...).
- :mod:`repro.topogen.intra` -- intra-AS router-level topologies.
- :mod:`repro.topogen.internet` -- per-target measurement networks
  (VPs, transit path, target AS, customer cones).
- :mod:`repro.topogen.deployment` -- applies a scenario: vendors,
  SR/LDP enrolment, SRGBs, ttl-propagate / RFC 4950 knobs.
- :mod:`repro.topogen.anaximander` -- target-list construction.
- :mod:`repro.topogen.bdrmapit` -- router-to-AS ownership annotation.
- :mod:`repro.topogen.alias` -- MIDAR/APPLE-style alias resolution.
"""

from repro.topogen.as_types import AsRole, Confirmation
from repro.topogen.portfolio import AsSpec, Portfolio, default_portfolio
from repro.topogen.deployment import DeploymentScenario
from repro.topogen.internet import MeasurementNetwork, build_measurement_network

__all__ = [
    "AsRole",
    "Confirmation",
    "AsSpec",
    "Portfolio",
    "default_portfolio",
    "DeploymentScenario",
    "MeasurementNetwork",
    "build_measurement_network",
]
