"""Tests for MIDAR/APPLE-style alias resolution."""

from repro.topogen.alias import AliasResolver, IpIdCounter

from tests.conftest import ChainNetwork


def observed_addresses(chain: ChainNetwork):
    addresses = set()
    for router in chain.routers:
        addresses.update(router.interfaces.values())
    return addresses


class TestIpIdCounter:
    def test_monotonic_modulo_wrap(self):
        counter = IpIdCounter(router_id=7, seed=1)
        samples = [counter.sample() for _ in range(100)]
        deltas = [
            (b - a) % 65_536 for a, b in zip(samples, samples[1:])
        ]
        assert all(0 < d < 10 for d in deltas)  # small positive stride

    def test_distinct_routers_distinct_sequences(self):
        a = [IpIdCounter(1, seed=1).sample() for _ in range(3)]
        b = [IpIdCounter(2, seed=1).sample() for _ in range(3)]
        assert a != b


class TestAliasResolver:
    def test_full_success_groups_by_router(self):
        chain = ChainNetwork()
        resolver = AliasResolver(chain.network, success_rate=1.0)
        sets = resolver.resolve(observed_addresses(chain))
        # every alias set maps onto exactly one router
        for alias_set in sets:
            owners = {
                chain.network.owner_of(a) for a in alias_set.addresses
            }
            assert len(owners) == 1
        # interior routers expose two interfaces each
        sizes = sorted(len(s) for s in sets)
        assert sizes == [1, 2, 2, 2, 2]

    def test_zero_success_all_singletons(self):
        chain = ChainNetwork()
        resolver = AliasResolver(chain.network, success_rate=0.0)
        sets = resolver.resolve(observed_addresses(chain))
        assert all(len(s) == 1 for s in sets)

    def test_unknown_addresses_dropped(self):
        from repro.netsim.addressing import IPv4Address

        chain = ChainNetwork()
        resolver = AliasResolver(chain.network, success_rate=1.0)
        sets = resolver.resolve(
            {IPv4Address.from_string("203.0.113.1")}
        )
        assert sets == []

    def test_deterministic(self):
        chain = ChainNetwork()
        addresses = observed_addresses(chain)
        a = AliasResolver(chain.network, success_rate=0.5, seed=3).resolve(
            addresses
        )
        b = AliasResolver(chain.network, success_rate=0.5, seed=3).resolve(
            addresses
        )
        assert a == b

    def test_invalid_rate(self):
        import pytest

        chain = ChainNetwork()
        with pytest.raises(ValueError):
            AliasResolver(chain.network, success_rate=-0.1)
