"""Root-logger configuration for the ``arest`` CLI.

The campaign engine logs real operational events -- worker
re-dispatches, quarantines, checkpoint salvage, VP-pool clamps -- but a
library must never configure logging behind its caller's back, so until
the entry point wires the root logger those records ride Python's
last-resort handler (bare messages, WARNING+ only).  The CLI calls
:func:`configure_logging` once, honouring ``--log-level`` and
``--log-format``:

- ``text`` -- conventional ``HH:MM:SS level logger: message`` lines on
  stderr;
- ``json`` -- one JSON object per line (timestamp, level, logger,
  message, optional exception), the shape log shippers ingest directly.

Repeated calls reconfigure (``force=True``), so tests and embedders can
switch formats without handler duplication.
"""

from __future__ import annotations

import json
import logging
import time

#: accepted ``--log-level`` choices (argparse restricts to these)
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: accepted ``--log-format`` choices
LOG_FORMATS = ("text", "json")


class JsonLogFormatter(logging.Formatter):
    """Format records as single-line JSON objects."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_logging(level: str = "warning", fmt: str = "text") -> None:
    """Wire the root logger for CLI runs (idempotent, ``force=True``)."""
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}")
    if fmt not in LOG_FORMATS:
        raise ValueError(f"unknown log format {fmt!r}")
    handler = logging.StreamHandler()
    if fmt == "json":
        handler.setFormatter(JsonLogFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    logging.basicConfig(
        level=getattr(logging, level.upper()), handlers=[handler], force=True
    )
