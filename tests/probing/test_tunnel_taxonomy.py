"""Tests for the explicit/implicit/opaque/invisible tunnel taxonomy."""

from repro.probing.tnt import TntProber
from repro.probing.tunnels import (
    TunnelType,
    classify_tunnels,
    implicit_hops,
    infer_opaque_length,
)

from tests.conftest import ChainNetwork, make_hop, make_trace


def observed(chain: ChainNetwork, reveal: float = 1.0):
    tr = TntProber(chain.engine, reveal_success_rate=reveal).trace(
        chain.vp.router_id, chain.target
    )
    return tr, classify_tunnels(tr)


class TestEndToEndTaxonomy:
    def test_explicit(self):
        tr, tunnels = observed(ChainNetwork())
        assert [t.tunnel_type for t in tunnels] == [TunnelType.EXPLICIT]
        assert tunnels[0].length == 3

    def test_implicit(self):
        tr, tunnels = observed(ChainNetwork(rfc4950=False))
        assert [t.tunnel_type for t in tunnels] == [TunnelType.IMPLICIT]

    def test_opaque_with_revealed_interior(self):
        tr, tunnels = observed(ChainNetwork(propagate=False))
        assert [t.tunnel_type for t in tunnels] == [TunnelType.OPAQUE]
        # revelation folded the interior into the same observation
        assert tunnels[0].length > 1

    def test_opaque_without_revelation(self):
        tr, tunnels = observed(ChainNetwork(propagate=False), reveal=0.0)
        assert [t.tunnel_type for t in tunnels] == [TunnelType.OPAQUE]
        assert tunnels[0].length == 1

    def test_invisible(self):
        tr, tunnels = observed(
            ChainNetwork(propagate=False, rfc4950=False)
        )
        assert all(
            t.tunnel_type is TunnelType.INVISIBLE for t in tunnels
        )

    def test_plain_ip_no_tunnels(self):
        tr, tunnels = observed(ChainNetwork(sr=False, ldp=False))
        assert tunnels == []


class TestSyntheticTaxonomy:
    def test_opaque_requires_high_lse_ttl(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(16_005,), lse_ttl=253)]
        )
        tunnels = classify_tunnels(trace)
        assert tunnels[0].tunnel_type is TunnelType.OPAQUE

    def test_low_ttl_single_hop_is_explicit(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(16_005,), lse_ttl=1)]
        )
        tunnels = classify_tunnels(trace)
        assert tunnels[0].tunnel_type is TunnelType.EXPLICIT

    def test_labeled_run_is_one_explicit_tunnel(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,)),
                make_hop(2, "10.0.0.2", labels=(16_005,)),
                make_hop(3, "10.0.0.3"),
                make_hop(4, "10.0.0.4", labels=(16_009,)),
                make_hop(5, "10.0.0.5", labels=(16_009,)),
            ]
        )
        tunnels = classify_tunnels(trace)
        assert [t.tunnel_type for t in tunnels] == [
            TunnelType.EXPLICIT,
            TunnelType.EXPLICIT,
        ]

    def test_infer_opaque_length(self):
        hop = make_hop(1, "10.0.0.1", labels=(16_005,), lse_ttl=251)
        assert infer_opaque_length(hop) == 4
        low = make_hop(1, "10.0.0.1", labels=(16_005,), lse_ttl=1)
        assert infer_opaque_length(low) is None

    def test_implicit_hops_helper(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2", truth_planes=("ldp",)),
                make_hop(3, "10.0.0.3", labels=(55,)),
            ]
        )
        assert implicit_hops(trace) == [1]
