"""Work-stealing shard execution with lease-based crash recovery.

:class:`~repro.campaign.executor.SupervisedExecutor` spawns one fresh
process per task -- the right call for 41 heavyweight per-AS tasks, and
exactly the wrong one for tens of thousands of small shards, where
process spawn would dominate wall clock.  This module keeps a fixed
pool of **persistent workers** that *pull* work: a worker that finishes
early immediately claims the next pending shard, so fast workers steal
the queue out from under slow ones and the pool drains at the speed of
its healthiest members (self-scheduling pull is work stealing with one
shared deque).

Persistence raises the stakes on failure -- a wedged worker now blocks
a whole stream of shards, not one task -- so every claim carries a
**lease**:

- granting a shard to a worker starts a lease of ``lease_timeout``
  seconds; every message from the worker (stage heartbeats, results)
  renews it;
- a worker whose lease expires is presumed lost: it is SIGKILLed, a
  replacement is spawned, and the shard returns to the queue;
- likewise a worker that dies outright (OOM kill, segfault,
  ``kill -9``) -- detected by its corpse -- has its in-flight shard
  re-queued;
- re-dispatch is bounded (``max_redispatch``); a shard that keeps
  killing workers is quarantined instead of poisoning the pool
  forever.

Workers can also ask to be **recycled** (the RSS watchdog's graceful
degradation): the request is honoured *between* shards -- the worker
finishes its current shard, delivers the result, and exits cleanly;
the supervisor spawns a fresh process for the next claim.  Memory
pressure therefore throttles admission without ever interrupting a
write.

Determinism: like the supervised engine, this executor imposes no
ordering -- outcomes are keyed, and callers that assemble results in
plan order get byte-identical output for any ``jobs`` value, because
each shard is itself a pure function of the campaign config.
``jobs=1`` runs every shard in-process with no subprocess, no pickling
and no leases: exactly a plain loop.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Sequence

from repro.campaign.executor import (
    ExecutionResult,
    Quarantine,
    SupervisedExecutor,
    TaskOutcome,
    TaskStatus,
)

logger = logging.getLogger(__name__)

#: shard callable: ``fn(payload, ctl)`` with ``ctl.heartbeat(note)`` for
#: liveness/lease renewal and ``ctl.request_recycle()`` for a graceful
#: between-shards process replacement
ShardFn = Callable[[Any, "WorkerControl"], Any]


class WorkerControl:
    """The worker-side handle a shard function talks to."""

    __slots__ = ("_send", "recycle_requested", "stages")

    def __init__(self, send: Callable[[Any], None] | None = None) -> None:
        self._send = send
        self.recycle_requested = False
        #: stages reported so far (in-process mode's heartbeat record)
        self.stages: list[str] = []

    def heartbeat(self, note: str) -> None:
        """Report the current stage; renews the supervisor's lease."""
        self.stages.append(note)
        if self._send is not None:
            self._send(("hb", note))

    def request_recycle(self) -> None:
        """Ask for a fresh process after the current shard completes."""
        self.recycle_requested = True


def _worker_entry(fn: ShardFn, conn: Connection) -> None:
    """Persistent worker loop: pull a shard, run it, report, repeat.

    SIGINT is ignored (the supervisor handles Ctrl-C and drains).  A
    raising shard function is reported then the process exits -- a
    fresh interpreter replaces it, so one shard's wreckage cannot leak
    into the next shard's run.  A recycle request exits cleanly after
    the result is delivered.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # supervisor went away
            os._exit(0)
        if message[0] == "stop":
            conn.close()
            os._exit(0)
        payload = message[1]
        ctl = WorkerControl(conn.send)
        try:
            value = fn(payload, ctl)
        except BaseException as exc:  # noqa: BLE001 -- report, then die
            try:
                conn.send(("exc", f"{type(exc).__name__}: {exc}"))
                conn.close()
            finally:
                os._exit(1)
        conn.send(("res", value, ctl.recycle_requested))
        if ctl.recycle_requested:
            conn.close()
            os._exit(0)


@dataclass(slots=True)
class _Assignment:
    """One leased shard in flight on one worker."""

    key: Any
    payload: Any
    attempts: int
    started: float
    #: last message of any kind (the lease renewal clock)
    last_beat: float
    last_stage: str | None = None
    stage_started: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: terminal message received from the worker, if any
    message: tuple | None = None


@dataclass(slots=True)
class _Worker:
    """Supervisor-side state of one persistent worker process."""

    process: Any
    conn: Connection
    assignment: _Assignment | None = None


def _close_stage(assignment: _Assignment, now: float) -> None:
    """Fold the open heartbeat stage into the observed tally."""
    if assignment.last_stage is not None:
        assignment.stage_seconds[assignment.last_stage] = (
            assignment.stage_seconds.get(assignment.last_stage, 0.0)
            + now
            - assignment.stage_started
        )
    assignment.stage_started = now


class LeaseExecutor:
    """Run keyed shards on a pool of persistent, leased workers.

    Parameters
    ----------
    fn:
        The shard function, ``fn(payload, ctl) -> value``.  With
        ``jobs > 1`` it must be picklable and runs in long-lived
        subprocesses, one shard at a time per process.
    jobs:
        Worker pool size.  ``1`` selects the in-process path: plain
        sequential loop, no leases, no subprocesses.
    lease_timeout:
        Seconds of worker silence after which its claim is presumed
        lost and re-dispatched (``None`` disables lease expiry;
        worker *death* is still detected and recovered).
    watch_interval:
        Supervisor poll cadence in seconds.
    max_redispatch:
        Re-dispatch budget per shard before quarantine (default 1).
    """

    def __init__(
        self,
        fn: ShardFn,
        jobs: int = 1,
        lease_timeout: float | None = None,
        watch_interval: float = 0.05,
        max_redispatch: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if lease_timeout is not None and lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if watch_interval <= 0:
            raise ValueError("watch_interval must be positive")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        self.fn = fn
        self.jobs = jobs
        self.lease_timeout = lease_timeout
        self.watch_interval = watch_interval
        self.max_redispatch = max_redispatch
        #: observational execution tallies (telemetry only -- results
        #: never read them)
        self.stats: dict[str, int] = {
            "leases_granted": 0,
            "leases_renewed": 0,
            "leases_expired": 0,
            "workers_spawned": 0,
            "workers_crashed": 0,
            "workers_recycled": 0,
            "shards_redispatched": 0,
            "shards_quarantined": 0,
        }

    # -- public API -----------------------------------------------------------

    def run(
        self,
        tasks: Sequence[tuple[Any, Any]],
        on_complete: Callable[[TaskOutcome], None] | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> ExecutionResult:
        """Drain ``tasks`` (``(key, payload)`` pairs) through the pool.

        ``on_complete`` fires once per shard in completion order with
        its final outcome.  ``stop`` is polled between grants; once
        true no new shard is leased, in-flight shards drain (leases
        still enforced) and the result is marked interrupted.
        """
        keys = [key for key, _ in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("task keys must be unique")
        if self.jobs == 1:
            return self._run_inprocess(tasks, on_complete, stop)
        return self._run_pool(tasks, on_complete, stop)

    # -- in-process path (jobs=1) ----------------------------------------------

    def _run_inprocess(
        self,
        tasks: Sequence[tuple[Any, Any]],
        on_complete: Callable[[TaskOutcome], None] | None,
        stop: Callable[[], bool] | None,
    ) -> ExecutionResult:
        result = ExecutionResult()
        for key, payload in tasks:
            if stop is not None and stop():
                result.interrupted = True
                break
            ctl = WorkerControl()
            try:
                value = self.fn(payload, ctl)
            except KeyboardInterrupt:
                result.interrupted = True
                break
            except Exception as exc:  # noqa: BLE001 -- per-shard isolation
                outcome = TaskOutcome(
                    key=key,
                    status=TaskStatus.ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    last_stage=ctl.stages[-1] if ctl.stages else None,
                )
            else:
                outcome = TaskOutcome(
                    key=key,
                    status=TaskStatus.OK,
                    value=value,
                    last_stage=ctl.stages[-1] if ctl.stages else None,
                )
            result.outcomes[key] = outcome
            if on_complete is not None:
                on_complete(outcome)
        return result

    # -- pooled path (jobs>1) --------------------------------------------------

    def _spawn(self, ctx) -> _Worker:
        """Start one persistent worker with its duplex channel."""
        supervisor_conn, worker_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_entry, args=(self.fn, worker_conn), daemon=True
        )
        process.start()
        worker_conn.close()
        self.stats["workers_spawned"] += 1
        return _Worker(process=process, conn=supervisor_conn)

    def _run_pool(
        self,
        tasks: Sequence[tuple[Any, Any]],
        on_complete: Callable[[TaskOutcome], None] | None,
        stop: Callable[[], bool] | None,
    ) -> ExecutionResult:
        ctx = SupervisedExecutor._mp_context()
        result = ExecutionResult()
        pending: list[tuple[Any, Any, int]] = [
            (key, payload, 1) for key, payload in tasks
        ]
        pool: list[_Worker | None] = [None] * self.jobs
        stopping = False

        def finish(outcome: TaskOutcome) -> None:
            result.outcomes[outcome.key] = outcome
            if on_complete is not None:
                on_complete(outcome)

        def fail_or_requeue(
            assignment: _Assignment, reason: str, detail: str, now: float
        ) -> None:
            """A lease expiry or worker death: steal back the shard."""
            _close_stage(assignment, now)
            if stopping:
                return  # interrupted run: resume will re-attempt
            if assignment.attempts <= self.max_redispatch:
                self.stats["shards_redispatched"] += 1
                logger.warning(
                    "shard %r %s after %.1fs (attempt %d); re-queueing",
                    assignment.key,
                    reason,
                    now - assignment.started,
                    assignment.attempts,
                )
                pending.append(
                    (assignment.key, assignment.payload, assignment.attempts + 1)
                )
                return
            self.stats["shards_quarantined"] += 1
            status = (
                TaskStatus.CRASH if reason == "crashed" else TaskStatus.TIMEOUT
            )
            outcome = TaskOutcome(
                key=assignment.key,
                status=status,
                error=detail,
                attempts=assignment.attempts,
                last_stage=assignment.last_stage,
                stage_seconds=dict(assignment.stage_seconds),
            )
            result.quarantined[assignment.key] = Quarantine(
                key=assignment.key,
                reason="crash" if status is TaskStatus.CRASH else "lease-expired",
                attempts=assignment.attempts,
                detail=detail,
            )
            logger.warning(
                "shard %r quarantined after %d attempt(s): %s",
                assignment.key,
                assignment.attempts,
                detail,
            )
            finish(outcome)

        try:
            while pending or any(
                w is not None and w.assignment is not None for w in pool
            ):
                if not stopping and stop is not None and stop():
                    stopping = True
                    result.interrupted = True
                    pending.clear()
                # Grant: every idle slot pulls the next pending shard.
                for slot in range(self.jobs):
                    if not pending:
                        break
                    worker = pool[slot]
                    if worker is not None and worker.assignment is not None:
                        continue
                    if worker is None:
                        worker = pool[slot] = self._spawn(ctx)
                    key, payload, attempts = pending.pop(0)
                    now = time.monotonic()
                    worker.assignment = _Assignment(
                        key=key,
                        payload=payload,
                        attempts=attempts,
                        started=now,
                        last_beat=now,
                        stage_started=now,
                    )
                    self.stats["leases_granted"] += 1
                    try:
                        worker.conn.send(("task", payload))
                    except (OSError, BrokenPipeError):
                        pass  # corpse detected below, shard re-queued
                self._pump(pool)
                now = time.monotonic()
                for slot in range(self.jobs):
                    worker = pool[slot]
                    if worker is None or worker.assignment is None:
                        continue
                    assignment = worker.assignment
                    if assignment.message is not None:
                        kind = assignment.message[0]
                        if kind == "res":
                            _, value, recycle = assignment.message
                            finish(
                                TaskOutcome(
                                    key=assignment.key,
                                    status=TaskStatus.OK,
                                    value=value,
                                    attempts=assignment.attempts,
                                    last_stage=assignment.last_stage,
                                )
                            )
                            worker.assignment = None
                            if recycle:
                                self.stats["workers_recycled"] += 1
                                self._retire(worker)
                                pool[slot] = None
                        else:  # "exc": deterministic failure, no requeue
                            _close_stage(assignment, now)
                            finish(
                                TaskOutcome(
                                    key=assignment.key,
                                    status=TaskStatus.ERROR,
                                    error=str(assignment.message[1]),
                                    attempts=assignment.attempts,
                                    last_stage=assignment.last_stage,
                                    stage_seconds=dict(
                                        assignment.stage_seconds
                                    ),
                                )
                            )
                            self._retire(worker)  # worker exited itself
                            pool[slot] = None
                        continue
                    if not worker.process.is_alive():
                        # Died mid-shard: drain any final message first
                        # so a delivered result is never read as a crash.
                        self._drain(worker, now)
                        if worker.assignment.message is not None:
                            continue  # settled next iteration
                        self.stats["workers_crashed"] += 1
                        detail = (
                            f"worker died without a result (exit code "
                            f"{worker.process.exitcode}) in stage "
                            f"{assignment.last_stage or 'unknown'}"
                        )
                        self._retire(worker)
                        pool[slot] = None
                        fail_or_requeue(assignment, "crashed", detail, now)
                        continue
                    if (
                        self.lease_timeout is not None
                        and now - assignment.last_beat > self.lease_timeout
                    ):
                        self.stats["leases_expired"] += 1
                        detail = (
                            f"lease expired after "
                            f"{now - assignment.last_beat:.1f}s of silence "
                            f"in stage {assignment.last_stage or 'unknown'}"
                        )
                        self._kill(worker)
                        pool[slot] = None
                        fail_or_requeue(
                            assignment, "lost its lease", detail, now
                        )
        finally:
            for worker in pool:
                if worker is None:
                    continue
                if worker.assignment is not None:
                    self._kill(worker)
                else:
                    self._retire(worker)
        return result

    def _pump(self, pool: list[_Worker | None]) -> None:
        """Block briefly on busy workers' pipes and drain what's ready."""
        busy = {
            w.conn: w
            for w in pool
            if w is not None and w.assignment is not None
        }
        if not busy:
            return
        ready = connection_wait(list(busy), timeout=self.watch_interval)
        now = time.monotonic()
        for conn in ready:
            self._drain(busy[conn], now)

    def _drain(self, worker: _Worker, now: float) -> None:
        """Read everything currently in one worker's pipe."""
        assignment = worker.assignment
        if assignment is None:
            return
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                return  # corpse handling settles it
            assignment.last_beat = now  # every message renews the lease
            if message[0] == "hb":
                self.stats["leases_renewed"] += 1
                _close_stage(assignment, now)
                assignment.last_stage = str(message[1])
            else:  # "res" / "exc"
                assignment.message = message

    @staticmethod
    def _retire(worker: _Worker) -> None:
        """Shut one idle (or self-exited) worker down cleanly."""
        if worker.process.is_alive():
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        worker.process.join(timeout=5)
        if worker.process.is_alive():  # pragma: no cover - stuck on exit
            worker.process.kill()
            worker.process.join()
        worker.conn.close()

    @staticmethod
    def _kill(worker: _Worker) -> None:
        """SIGKILL a worker presumed lost; containment, not courtesy."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        worker.conn.close()
