"""Tests for the Paris traceroute client."""

import pytest

from repro.probing.traceroute import ParisTraceroute

from tests.conftest import ChainNetwork


class TestParisTraceroute:
    def test_full_trace_shape(self, sr_chain):
        tr = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target, vp_name="vp1"
        )
        assert tr.reached
        assert tr.vp == "vp1"
        assert tr.hops[-1].destination_reply
        assert tr.hops[-1].address == sr_chain.target
        assert [h.probe_ttl for h in tr.hops] == list(
            range(1, len(tr.hops) + 1)
        )

    def test_flow_id_stable_for_same_tuple(self, sr_chain):
        prober = ParisTraceroute(sr_chain.engine)
        a = prober.trace(sr_chain.vp.router_id, sr_chain.target)
        b = prober.trace(sr_chain.vp.router_id, sr_chain.target)
        assert a.flow_id == b.flow_id
        assert [h.address for h in a.hops] == [h.address for h in b.hops]

    def test_explicit_flow_id_respected(self, sr_chain):
        prober = ParisTraceroute(sr_chain.engine)
        tr = prober.trace(sr_chain.vp.router_id, sr_chain.target, flow_id=77)
        assert tr.flow_id == 77

    def test_rtts_monotonic_ish(self, sr_chain):
        tr = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        rtts = [h.rtt_ms for h in tr.hops if h.rtt_ms is not None]
        # Jitter is < one hop latency, so order must hold.
        assert rtts == sorted(rtts)

    def test_stars_recorded_and_give_up(self):
        chain = ChainNetwork(length=8)
        for r in chain.routers[2:]:
            r.icmp_silent = True
        chain.routers[-1].icmp_silent = True
        tr = ParisTraceroute(chain.engine, max_ttl=30).trace(
            chain.vp.router_id, chain.target
        )
        # gives up after consecutive stars, before max_ttl
        assert not tr.reached
        assert len(tr.hops) < 30
        assert any(h.address is None for h in tr.hops)

    def test_max_ttl_cap(self, sr_chain):
        tr = ParisTraceroute(sr_chain.engine, max_ttl=3).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        assert not tr.reached
        assert len(tr.hops) == 3

    def test_invalid_max_ttl(self, sr_chain):
        with pytest.raises(ValueError):
            ParisTraceroute(sr_chain.engine, max_ttl=0)

    def test_lses_quoted_on_explicit_tunnel(self, sr_chain):
        tr = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        labeled = tr.labeled_hops()
        assert len(labeled) == 3
        assert all(h.lses[0].label == labeled[0].lses[0].label for h in labeled)

    def test_reply_ttl_recorded(self, sr_chain):
        tr = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        assert all(
            h.reply_ip_ttl is not None for h in tr.hops if h.responded
        )
