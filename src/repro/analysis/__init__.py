"""Paper analyses: one module per table/figure family.

- :mod:`repro.analysis.survey` -- the operator survey (Table 2, Fig. 5).
- :mod:`repro.analysis.stack_archive` -- longitudinal stack-size
  evolution over CAIDA/RIPE-style archives (Fig. 7).
- :mod:`repro.analysis.stack_stats` -- stack sizes in SR vs. classic
  contexts (Fig. 9).
- :mod:`repro.analysis.deployment` -- SR/MPLS/IP areas per AS (Fig. 10).
- :mod:`repro.analysis.validation` -- ground-truth scoring (Table 3) and
  the Sec. 6.2 headline detection metrics.
- :mod:`repro.analysis.fingerprint_stats` -- fingerprint method shares
  and vendor heatmap (Figs. 14, 15).
- :mod:`repro.analysis.labels` -- label-space occupancy (Fig. 16).
- :mod:`repro.analysis.vp_coverage` -- per-VP discovery CDF (Fig. 17).
- :mod:`repro.analysis.tunnel_stats` -- tunnel-type mix (Fig. 13).
- :mod:`repro.analysis.robustness` -- degradation curves under injected
  measurement faults.
"""

from repro.analysis.robustness import (
    DegradationLevel,
    DegradationStudy,
    FlagDegradation,
    degradation_study,
    render_degradation_table,
)
from repro.analysis.survey import SurveyAnswers, generate_survey, summarize_survey
from repro.analysis.validation import (
    FlagValidation,
    headline_detection,
    validate_against_truth,
)

__all__ = [
    "SurveyAnswers",
    "generate_survey",
    "summarize_survey",
    "FlagValidation",
    "headline_detection",
    "validate_against_truth",
    "DegradationLevel",
    "DegradationStudy",
    "FlagDegradation",
    "degradation_study",
    "render_degradation_table",
]
