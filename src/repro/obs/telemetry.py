"""In-process telemetry recording: hierarchical spans and typed counters.

The campaign's determinism contract -- byte-identical reports and
checkpoints for any execution plan -- forbids wall-clock data anywhere
near the results.  Telemetry therefore lives entirely *beside* the
pipeline: a :class:`Telemetry` recorder collects monotonic span
durations and counter tallies into its own buffers, and everything it
records flows only into observability artifacts (the JSONL event sink,
the run manifest, the Prometheus export), never into a result object.

Two implementations share one duck-typed surface:

- :class:`Telemetry` -- the live recorder.  ``span(stage)`` is a
  context manager measuring a monotonic duration and recording it under
  the hierarchical path of the spans currently open (``as`` >
  ``analyze`` > ``detect`` becomes ``as/analyze/detect``);
  ``count(name, n)`` bumps a typed counter; ``add_seconds`` records a
  pre-measured duration (for hot loops that accumulate locally instead
  of opening a span per iteration).
- :class:`NullTelemetry` -- the default everywhere.  Every method is a
  no-op and ``enabled`` is False, so hot loops can skip even the clock
  reads (``if telemetry.enabled: ...``) and the uninstrumented path
  stays byte-and-branch identical to the seed behaviour.

Recorders are cheap, single-threaded, and scoped to one unit of work
(one AS task, typically).  :meth:`Telemetry.export` snapshots the
buffers into a plain JSON-able dict that survives a trip through the
supervised executor's outcome pipe, and :func:`merge_counters` folds
counter dicts together -- plain addition, so aggregation is
order-independent by construction (serial, parallel and resumed runs
produce identical totals).

Distributed tracing (``repro.obs.trace``) is opt-in per recorder: a
recorder constructed with a :class:`~repro.obs.trace.TraceContext`
stamps every span with the campaign trace id, a fresh span id, its
parent's span id and the monotonic start offset, and captures a
:class:`~repro.obs.trace.ClockAnchor` so readers can normalize the
offsets to wall-clock time.  Without a context the span records are
byte-for-byte what they always were.  ``observe(stage, seconds)`` bins
per-event latencies into the fixed deterministic buckets
(:data:`~repro.obs.trace.LATENCY_BUCKETS`) either way.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.trace import ClockAnchor, LatencyHistogram, TraceContext


class NullTelemetry:
    """No-op recorder: the zero-overhead default.

    Shares the :class:`Telemetry` surface so instrumented code never
    branches on whether telemetry is on -- except hot loops, which may
    consult :attr:`enabled` to skip clock reads entirely.
    """

    __slots__ = ()

    enabled = False
    clock = staticmethod(time.monotonic)

    @contextmanager
    def span(self, stage: str, **attrs: object) -> Iterator[None]:
        """No-op span."""
        yield

    def count(self, name: str, n: int = 1) -> None:
        """No-op counter bump."""

    def gauge(self, name: str, value: float) -> None:
        """No-op gauge set."""

    def add_seconds(self, stage: str, seconds: float, **attrs: object) -> None:
        """No-op duration record."""

    def observe(self, stage: str, seconds: float) -> None:
        """No-op histogram observation."""

    def export(self) -> dict:
        """Empty export, shaped like :meth:`Telemetry.export`."""
        return {"spans": [], "counters": {}, "gauges": {}}


#: process-wide shared no-op instance (stateless, safe to share)
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Live recorder for one unit of work (typically one AS task).

    Not thread-safe; the campaign gives each worker its own recorder
    and ships the export back over the outcome channel.

    With ``trace`` set (a :class:`~repro.obs.trace.TraceContext`), span
    records additionally carry ``trace_id`` / ``span_id`` /
    ``parent_span_id`` / ``start``; top-level spans parent under the
    context's ``span_id`` (the supervisor's root span when the context
    crossed a process boundary), nested spans under the enclosing span.
    """

    __slots__ = (
        "clock",
        "spans",
        "counters",
        "gauges",
        "histograms",
        "trace",
        "anchor",
        "_stack",
        "_rng",
    )

    enabled = True

    def __init__(
        self, clock=time.monotonic, trace: TraceContext | None = None
    ) -> None:
        self.clock = clock
        #: span records: {"stage", "path", "seconds", + caller attrs}
        self.spans: list[dict] = []
        #: typed counter tallies by name
        self.counters: dict[str, int] = {}
        #: last-write-wins gauges by name
        self.gauges: dict[str, float] = {}
        #: stage -> fixed-bucket latency histogram (see obs.trace)
        self.histograms: dict[str, LatencyHistogram] = {}
        #: propagation context (None = untraced legacy records)
        self.trace = trace
        self._stack: list[tuple[str, str | None]] = []
        if trace is not None:
            #: this process's wall/monotonic correspondence -- ships
            #: with the export so readers can normalize span starts
            self.anchor: ClockAnchor | None = ClockAnchor.capture(clock)
            # span ids need only be unique within one trace; a
            # urandom-seeded PRNG gives 64 fresh bits per span without
            # a syscall per id
            self._rng = random.Random(os.urandom(16))
        else:
            self.anchor = None
            self._rng = None

    def _new_span_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    @contextmanager
    def span(self, stage: str, **attrs: object) -> Iterator[None]:
        """Measure a monotonic duration under the current span path.

        The record is emitted even when the body raises, so a stage
        that failed mid-flight still shows the time it sank.
        """
        traced = self.trace is not None
        if traced:
            span_id = self._new_span_id()
            parent = (
                self._stack[-1][1] if self._stack else self.trace.span_id
            )
        else:
            span_id = parent = None
        self._stack.append((stage, span_id))
        start = self.clock()
        try:
            yield
        finally:
            seconds = self.clock() - start
            path = "/".join(name for name, _ in self._stack)
            self._stack.pop()
            record = {"stage": stage, "path": path, "seconds": seconds}
            if traced:
                record["start"] = start
                record["trace_id"] = self.trace.trace_id
                record["span_id"] = span_id
                record["parent_span_id"] = parent
            if attrs:
                record.update(attrs)
            self.spans.append(record)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def add_seconds(self, stage: str, seconds: float, **attrs: object) -> None:
        """Record a pre-measured duration as a span under the open path.

        Hot loops accumulate locally (two clock reads per iteration)
        and call this once, instead of paying a context manager per
        iteration.

        Aggregate records carry trace ids (so they hang off the right
        parent in reconstruction) but no ``start``: the seconds were
        accumulated across a whole loop, not one interval, so they
        appear in the stage tables rather than the Gantt view.
        """
        path = "/".join((*(name for name, _ in self._stack), stage))
        record = {"stage": stage, "path": path, "seconds": seconds}
        if self.trace is not None:
            record["trace_id"] = self.trace.trace_id
            record["span_id"] = self._new_span_id()
            record["parent_span_id"] = (
                self._stack[-1][1] if self._stack else self.trace.span_id
            )
        if attrs:
            record.update(attrs)
        self.spans.append(record)

    def observe(self, stage: str, seconds: float) -> None:
        """Bin one per-event latency into ``stage``'s fixed buckets.

        One bisect over the deterministic bucket edges -- cheap enough
        to call per trace in the probe/sanitize/detect hot loops.
        """
        hist = self.histograms.get(stage)
        if hist is None:
            hist = self.histograms[stage] = LatencyHistogram()
        hist.observe(seconds)

    def histogram(self, stage: str) -> LatencyHistogram:
        """The (lazily created) histogram for ``stage``.

        Hot loops bind ``histogram(stage).observe`` once up front so the
        per-event cost is a single bound call, not a dict lookup.
        """
        hist = self.histograms.get(stage)
        if hist is None:
            hist = self.histograms[stage] = LatencyHistogram()
        return hist

    def export(self) -> dict:
        """Plain JSON-able snapshot (survives the outcome pipe)."""
        out = {
            "spans": [dict(record) for record in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.histograms:
            out["histograms"] = {
                stage: hist.as_dict()
                for stage, hist in self.histograms.items()
            }
        if self.anchor is not None:
            out["anchor"] = self.anchor.as_dict()
        return out


def merge_counters(
    into: dict[str, int], counters: Mapping[str, int]
) -> dict[str, int]:
    """Fold ``counters`` into ``into`` (in place) and return it.

    Pure addition: merging any permutation of the same counter dicts
    yields identical totals, which is what makes serial, parallel and
    resumed runs agree.
    """
    for name, value in counters.items():
        into[name] = into.get(name, 0) + value
    return into
