"""Label sequence matching for the consecutive flags (CVR / CO).

With homogeneous SRGBs a node SID keeps the exact same 20-bit value
across every hop of the segment.  With *heterogeneous* SRGBs each hop
re-maps the SID into its downstream neighbour's block, so the value
changes -- but since the SID index is preserved, the labels share their
low-order part whenever the blocks are round-base aligned.  AReST
approximates this with decimal-suffix matching (footnote 4 of the
paper: "the flag is also triggered if two labels share a common suffix
(e.g., 16,005 -> 13,005)").
"""

from __future__ import annotations

#: how many trailing decimal digits must agree for a suffix match
SUFFIX_DIGITS = 3


def suffix_match(a: int, b: int, digits: int = SUFFIX_DIGITS) -> bool:
    """True when two *different* labels share their last ``digits``
    decimal digits (the differing-SRGB case)."""
    if a == b:
        return False
    if digits <= 0:
        raise ValueError("digits must be positive")
    modulus = 10**digits
    return a % modulus == b % modulus


def sequence_match(a: int, b: int) -> bool:
    """Do two top labels on consecutive hops continue one SR segment?

    Either identical (same-SRGB deployments, the overwhelmingly common
    case: the paper measured only 0.01% suffix-based matches) or
    suffix-matched (heterogeneous SRGBs).
    """
    return a == b or suffix_match(a, b)


def run_is_suffix_based(labels: tuple[int, ...]) -> bool:
    """Did this (already matched) run rely on suffix matching at all?"""
    return any(labels[i] != labels[i + 1] for i in range(len(labels) - 1))
