"""Ablation -- suffix matching on heterogeneous SRGBs (footnote 4).

AS#26 (Free) runs per-router SRGB bases differing by whole thousands:
the node SID keeps its index but the on-wire label changes hop by hop.
Without suffix matching the consecutive flags collapse to nothing on
that AS; with it the same traces yield CVR/CO runs.
"""

from repro.core.detector import ArestDetector
from repro.core.flags import Flag, SEQUENCE_FLAGS
from repro.core.pipeline import ArestPipeline
from repro.util.tables import format_table

from benchmarks.conftest import emit


def _consecutive_count(result, suffix_matching: bool) -> int:
    pipeline = ArestPipeline(
        ArestDetector(suffix_matching=suffix_matching)
    )
    analysis = pipeline.analyze_as(
        result.spec.asn, result.dataset.traces, result.fingerprints
    )
    return sum(
        analysis.flag_counts()[flag] for flag in SEQUENCE_FLAGS
    )


def test_bench_ablation_suffix_matching(benchmark, portfolio_results):
    hetero = portfolio_results[26]  # Free: heterogeneous SRGBs
    homo = portfolio_results[28]  # Bell Canada: aligned SRGBs

    with_suffix = benchmark.pedantic(
        lambda: _consecutive_count(hetero, True), rounds=1, iterations=1
    )
    without_suffix = _consecutive_count(hetero, False)
    homo_with = _consecutive_count(homo, True)
    homo_without = _consecutive_count(homo, False)

    emit(
        format_table(
            ["AS", "SRGBs", "CVR+CO with suffix", "without"],
            [
                ("AS#26 Free", "heterogeneous", with_suffix, without_suffix),
                ("AS#28 Bell", "aligned", homo_with, homo_without),
            ],
            title="Ablation -- suffix matching (footnote 4)",
        )
    )

    # Shape: suffix matching is what makes heterogeneous deployments
    # detectable by the consecutive flags (a residue survives where two
    # neighbours happened to draw the same SRGB base); aligned
    # deployments are untouched by the ablation.
    assert with_suffix > without_suffix
    assert without_suffix <= with_suffix // 2
    assert homo_with == homo_without > 0
