"""Tests for label sequence / suffix matching (footnote 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.labels import run_is_suffix_based, sequence_match, suffix_match

labels = st.integers(min_value=0, max_value=2**20 - 1)


class TestSuffixMatch:
    def test_paper_example(self):
        # footnote 4: 16,005 -> 13,005
        assert suffix_match(16_005, 13_005)

    def test_identical_labels_are_not_suffix_matches(self):
        assert not suffix_match(16_005, 16_005)

    def test_different_suffixes(self):
        assert not suffix_match(16_005, 16_006)
        assert not suffix_match(16_005, 13_006)

    def test_short_labels(self):
        # 5 vs 1005: both end in "005"
        assert suffix_match(5, 1_005)

    def test_digits_parameter(self):
        assert suffix_match(16_005, 13_005, digits=3)
        assert not suffix_match(16_105, 13_005, digits=3)
        with pytest.raises(ValueError):
            suffix_match(1, 2, digits=0)

    @given(labels, labels)
    def test_symmetry(self, a, b):
        assert suffix_match(a, b) == suffix_match(b, a)


class TestSequenceMatch:
    def test_identical(self):
        assert sequence_match(16_005, 16_005)

    def test_suffix(self):
        assert sequence_match(16_005, 13_005)

    def test_mismatch(self):
        assert not sequence_match(16_005, 17_006)

    @given(labels)
    def test_reflexive(self, a):
        assert sequence_match(a, a)

    @given(labels, labels)
    def test_symmetric(self, a, b):
        assert sequence_match(a, b) == sequence_match(b, a)


class TestRunSuffixBased:
    def test_pure_run(self):
        assert not run_is_suffix_based((16_005, 16_005, 16_005))

    def test_mixed_run(self):
        assert run_is_suffix_based((16_005, 13_005, 13_005))

    def test_single_label(self):
        assert not run_is_suffix_based((16_005,))
