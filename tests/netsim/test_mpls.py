"""Unit and property tests for MPLS label-stack primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.mpls import (
    FIRST_UNRESERVED_LABEL,
    LabelStack,
    LabelStackEntry,
    MAX_LABEL,
    ReservedLabel,
)

labels = st.integers(min_value=0, max_value=MAX_LABEL)
tcs = st.integers(min_value=0, max_value=7)
ttls = st.integers(min_value=0, max_value=255)


class TestLabelStackEntry:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            LabelStackEntry(label=2**20)
        with pytest.raises(ValueError):
            LabelStackEntry(label=0, tc=8)
        with pytest.raises(ValueError):
            LabelStackEntry(label=0, ttl=256)

    def test_encode_layout(self):
        # Fig. 2: label(20) | TC(3) | S(1) | TTL(8)
        entry = LabelStackEntry(label=1, tc=1, bottom_of_stack=True, ttl=1)
        assert entry.encode() == (1 << 12) | (1 << 9) | (1 << 8) | 1

    def test_decremented(self):
        entry = LabelStackEntry(label=5, ttl=2)
        assert entry.decremented().ttl == 1

    def test_decrement_expired_rejected(self):
        entry = LabelStackEntry(label=5, ttl=0)
        with pytest.raises(ValueError):
            entry.decremented()

    def test_with_helpers_do_not_mutate(self):
        entry = LabelStackEntry(label=5, ttl=9)
        other = entry.with_label(6)
        assert entry.label == 5 and other.label == 6
        assert other.ttl == 9

    def test_decode_word_out_of_range(self):
        with pytest.raises(ValueError):
            LabelStackEntry.decode(2**32)

    @given(labels, tcs, st.booleans(), ttls)
    def test_encode_decode_roundtrip(self, label, tc, bottom, ttl):
        entry = LabelStackEntry(
            label=label, tc=tc, bottom_of_stack=bottom, ttl=ttl
        )
        assert LabelStackEntry.decode(entry.encode()) == entry


class TestReservedLabels:
    def test_values(self):
        assert ReservedLabel.IPV4_EXPLICIT_NULL == 0
        assert ReservedLabel.IMPLICIT_NULL == 3
        assert ReservedLabel.GAL == 13

    def test_first_unreserved(self):
        assert FIRST_UNRESERVED_LABEL == 16
        assert all(r < FIRST_UNRESERVED_LABEL for r in ReservedLabel)


class TestLabelStack:
    def test_bottom_of_stack_invariant_on_build(self):
        stack = LabelStack.from_labels([100, 200, 300])
        flags = [e.bottom_of_stack for e in stack]
        assert flags == [False, False, True]

    def test_push_updates_bottom(self):
        stack = LabelStack.from_labels([100])
        stack.push(LabelStackEntry(label=200))
        assert stack.labels() == (200, 100)
        assert [e.bottom_of_stack for e in stack] == [False, True]

    def test_pop_returns_top(self):
        stack = LabelStack.from_labels([100, 200])
        popped = stack.pop()
        assert popped.label == 100
        assert stack.labels() == (200,)
        assert stack.top.bottom_of_stack

    def test_pop_empty_rejected(self):
        with pytest.raises(IndexError):
            LabelStack().pop()

    def test_swap_keeps_ttl(self):
        stack = LabelStack([LabelStackEntry(label=100, ttl=37)])
        stack.swap(555)
        assert stack.top.label == 555
        assert stack.top.ttl == 37

    def test_swap_empty_rejected(self):
        with pytest.raises(IndexError):
            LabelStack().swap(5)

    def test_decrement_ttl(self):
        stack = LabelStack([LabelStackEntry(label=1, ttl=9)])
        stack.decrement_ttl()
        assert stack.top.ttl == 8

    def test_empty_properties(self):
        stack = LabelStack()
        assert not stack
        assert len(stack) == 0
        with pytest.raises(IndexError):
            _ = stack.top

    def test_copy_is_independent(self):
        stack = LabelStack.from_labels([1, 2])
        clone = stack.copy()
        clone.pop()
        assert stack.depth == 2
        assert clone.depth == 1

    def test_equality(self):
        assert LabelStack.from_labels([1, 2]) == LabelStack.from_labels([1, 2])
        assert LabelStack.from_labels([1]) != LabelStack.from_labels([2])

    def test_encode_decode_roundtrip(self):
        stack = LabelStack.from_labels([16_005, 3_001, 16_008], ttl=64)
        assert LabelStack.decode(stack.encode()) == stack

    @given(st.lists(labels, min_size=1, max_size=8))
    def test_exactly_one_bottom_entry(self, values):
        stack = LabelStack.from_labels(values)
        bottoms = [e.bottom_of_stack for e in stack]
        assert sum(bottoms) == 1
        assert bottoms[-1]

    @given(st.lists(labels, min_size=1, max_size=8))
    def test_push_pop_inverse(self, values):
        stack = LabelStack.from_labels(values)
        entry = LabelStackEntry(label=77, ttl=10)
        stack.push(entry)
        popped = stack.pop()
        assert popped.label == 77
        assert stack.labels() == tuple(values)

    @given(st.lists(labels, min_size=2, max_size=8))
    def test_pop_all_empties(self, values):
        stack = LabelStack.from_labels(values)
        for _ in values:
            stack.pop()
        assert not stack

    @given(st.lists(labels, min_size=1, max_size=8))
    def test_wire_roundtrip_property(self, values):
        stack = LabelStack.from_labels(values, ttl=255)
        assert LabelStack.decode(stack.encode()).labels() == tuple(values)
