"""SR policies and binding SIDs (RFC 9256 / the paper's Sec. 6.2).

An SR policy lives at a *head-end* router and is steered into through a
**binding SID** (BSID): a local label that, when active at the head-end,
is popped and replaced by the policy's full segment list -- "SR policies
allow one hop on a path to dynamically replace certain SIDs with new,
potentially deeper, stacks" (Sec. 6.2).

For AReST this is the mechanism behind mid-path stack *growth*: a
traceroute sees a shallow stack up to the head-end, then suddenly deep
stacks whose labels match no vendor range (the BSID and policy segments
come from local pools), raising LSO flags that are nonetheless genuine
SR -- exactly what the ESnet operator confirmed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.netsim.sr import SegmentRoutingDomain, SrConfigError
from repro.netsim.topology import Network
from repro.netsim.vendors import LabelRange, VENDOR_PROFILES


@dataclass(frozen=True, slots=True)
class SrPolicy:
    """One policy instance installed at a head-end router."""

    head_end: int
    binding_sid: int
    #: segment labels pushed when the BSID is consumed, top first
    segment_labels: tuple[int, ...]
    #: control-plane source of each pushed label ("sr")
    color: int = 0

    @property
    def depth(self) -> int:
        """Number of labels the policy splices in."""
        return len(self.segment_labels)


class SrPolicyRegistry:
    """Allocates binding SIDs and resolves policies at head-ends."""

    def __init__(
        self,
        network: Network,
        domain: SegmentRoutingDomain,
        seed: int = 0,
    ) -> None:
        self._network = network
        self._domain = domain
        self._seed = seed
        self._policies: dict[tuple[int, int], SrPolicy] = {}
        self._cursors: dict[int, int] = {}

    def install(
        self,
        head_end: int,
        via: int,
        egress: int,
        color: int = 0,
    ) -> SrPolicy:
        """Install (or return) a policy at ``head_end`` that steers
        traffic to ``egress`` through ``via``.

        The BSID is allocated from the head-end's local label space; the
        segment list encodes [node(via); node(egress)] in the SRGBs the
        respective processing routers will use.
        """
        if not self._domain.is_enrolled(head_end):
            raise SrConfigError(
                f"policy head-end #{head_end} is not SR-enrolled"
            )
        for target in (via, egress):
            if self._domain.node_index(target) is None:
                raise SrConfigError(
                    f"policy target #{target} has no node SID"
                )
        existing = self._find(head_end, via, egress, color)
        if existing is not None:
            return existing
        binding_sid = self._allocate_bsid(head_end)
        segments = self._encode_segments(head_end, via, egress)
        policy = SrPolicy(
            head_end=head_end,
            binding_sid=binding_sid,
            segment_labels=segments,
            color=color,
        )
        self._policies[(head_end, binding_sid)] = policy
        return policy

    def _find(
        self, head_end: int, via: int, egress: int, color: int
    ) -> SrPolicy | None:
        segments = self._encode_segments(head_end, via, egress)
        for (owner, _bsid), policy in self._policies.items():
            if (
                owner == head_end
                and policy.segment_labels == segments
                and policy.color == color
            ):
                return policy
        return None

    def _encode_segments(
        self, head_end: int, via: int, egress: int
    ) -> tuple[int, ...]:
        via_index = self._domain.node_index(via)
        egress_index = self._domain.node_index(egress)
        assert via_index is not None and egress_index is not None
        # the top label is examined by the head-end itself (it forwards
        # right after the splice); the inner label by `via`
        top = self._domain.label_on_wire(head_end, via_index)
        inner = self._domain.label_on_wire(via, egress_index)
        if via == egress:
            return (top,)
        return (top, inner)

    def _allocate_bsid(self, head_end: int) -> int:
        config = self._domain.config(head_end)
        pool: LabelRange | None = config.srlb
        if pool is None:
            vendor = self._network.router(head_end).vendor
            profile = VENDOR_PROFILES.get(vendor)
            pool = (
                profile.dynamic_pool
                if profile
                else LabelRange(24_000, 1_048_575)
            )
        base = (
            int.from_bytes(
                hashlib.sha256(
                    f"bsid:{self._seed}:{head_end}".encode()
                ).digest()[:4],
                "big",
            )
            % max(1, pool.size() - 256)
        )
        cursor = self._cursors.get(head_end, 0)
        for _ in range(256):
            label = pool.low + (base + cursor) % pool.size()
            cursor += 1
            if (head_end, label) not in self._policies and not any(
                p.binding_sid == label
                for (owner, _), p in self._policies.items()
                if owner == head_end
            ):
                self._cursors[head_end] = cursor
                return label
        raise SrConfigError(  # pragma: no cover - 256 tries suffice
            f"BSID space exhausted at head-end #{head_end}"
        )

    # -- forwarding-plane lookup ------------------------------------------------

    def policy_for(self, router_id: int, label: int) -> SrPolicy | None:
        """The policy spliced in when ``label`` is active at ``router_id``."""
        return self._policies.get((router_id, label))

    def policies_at(self, router_id: int) -> list[SrPolicy]:
        """Every policy installed at one head-end."""
        return [
            p for (owner, _), p in self._policies.items()
            if owner == router_id
        ]

    def __len__(self) -> int:
        return len(self._policies)
