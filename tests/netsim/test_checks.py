"""Tests for the network configuration linter."""

import pytest

from repro.netsim.checks import NetworkConfigError, assert_valid, lint_network
from repro.netsim.topology import Network, RouterRole

from tests.conftest import ChainNetwork


class TestLint:
    def test_clean_chain(self, sr_chain):
        assert lint_network(sr_chain.network, sr_chain.controller) == []
        assert_valid(sr_chain.network, sr_chain.controller)

    def test_empty_network(self):
        assert lint_network(Network()) == ["network has no routers"]

    def test_isolated_router(self):
        net = Network()
        net.add_router("lonely", asn=1)
        net.add_router("also", asn=1)
        issues = lint_network(net)
        assert any("no links" in i for i in issues)
        assert any("disconnected" in i for i in issues)

    def test_sr_flag_without_domain(self, ldp_chain):
        ldp_chain.routers[1].sr_enabled = True
        issues = lint_network(ldp_chain.network, ldp_chain.controller)
        assert any("no SR domain" in i for i in issues)

    def test_unenrolled_sr_router(self, sr_chain):
        extra = sr_chain.network.add_router(
            "extra", asn=sr_chain.routers[0].asn, sr_enabled=True
        )
        sr_chain.network.add_link(extra, sr_chain.routers[0])
        issues = lint_network(sr_chain.network, sr_chain.controller)
        assert any("not enrolled" in i for i in issues)

    def test_mpls_vantage_point(self, sr_chain):
        sr_chain.vp.ldp_enabled = True
        issues = lint_network(sr_chain.network, sr_chain.controller)
        assert any("must not run MPLS" in i for i in issues)

    def test_bad_icmp_rate(self, sr_chain):
        sr_chain.routers[0].icmp_response_rate = 1.5
        issues = lint_network(sr_chain.network, sr_chain.controller)
        assert any("icmp_response_rate" in i for i in issues)

    def test_assert_valid_raises(self):
        net = Network()
        with pytest.raises(NetworkConfigError) as exc:
            assert_valid(net)
        assert exc.value.issues

    def test_portfolio_networks_all_clean(self):
        """Every generated measurement network passes the lint (it runs
        inside build_measurement_network, so construction is the test)."""
        from repro.topogen.internet import build_measurement_network
        from repro.topogen.portfolio import default_portfolio

        portfolio = default_portfolio()
        for as_id in (7, 15, 26, 36, 46, 59):
            build_measurement_network(
                portfolio.spec(as_id), ["VM1"], seed=2
            )
