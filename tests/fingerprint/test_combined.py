"""Tests for combined fingerprinting and its precedence rule."""

import pytest

from repro.fingerprint.combined import CombinedFingerprinter
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.fingerprint.snmp import SnmpOracle
from repro.netsim.vendors import Vendor

from tests.conftest import ChainNetwork


def first_reply(chain: ChainNetwork):
    reply = chain.engine.forward_probe(chain.vp.router_id, chain.target, 1)
    assert reply is not None
    return reply


class TestPrecedence:
    def test_snmp_takes_precedence(self):
        chain = ChainNetwork(vendor=Vendor.HUAWEI)
        for r in chain.routers:
            r.snmp_responsive = True
        combined = CombinedFingerprinter(
            chain.engine, SnmpOracle(chain.network, coverage=1.0)
        )
        reply = first_reply(chain)
        fp = combined.fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        # TTL would only say {Cisco, Huawei}; SNMP pins Huawei exactly.
        assert fp.method is FingerprintMethod.SNMP
        assert fp.exact_vendor is Vendor.HUAWEI

    def test_ttl_fallback(self):
        chain = ChainNetwork(vendor=Vendor.CISCO)
        combined = CombinedFingerprinter(
            chain.engine, SnmpOracle(chain.network, coverage=1.0)
        )
        reply = first_reply(chain)
        fp = combined.fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        assert fp.method is FingerprintMethod.TTL
        assert fp.vendor_class == frozenset({Vendor.CISCO, Vendor.HUAWEI})

    def test_cache(self):
        chain = ChainNetwork()
        combined = CombinedFingerprinter(
            chain.engine, SnmpOracle(chain.network, coverage=1.0)
        )
        reply = first_reply(chain)
        combined.fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        assert combined.cache_size() == 1
        combined.fingerprint(
            reply.source_ip, reply.reply_ip_ttl, chain.vp.router_id
        )
        assert combined.cache_size() == 1


class TestFingerprintRecord:
    def test_none_constructor(self):
        fp = Fingerprint.none()
        assert not fp.identified
        assert fp.method is FingerprintMethod.NONE

    def test_snmp_requires_vendor(self):
        with pytest.raises(ValueError):
            Fingerprint(
                method=FingerprintMethod.SNMP,
                exact_vendor=None,
                vendor_class=frozenset(),
            )

    def test_none_must_be_empty(self):
        with pytest.raises(ValueError):
            Fingerprint(
                method=FingerprintMethod.NONE,
                exact_vendor=Vendor.CISCO,
                vendor_class=frozenset({Vendor.CISCO}),
            )

    def test_from_ttl(self):
        fp = Fingerprint.from_ttl(frozenset({Vendor.CISCO, Vendor.HUAWEI}))
        assert fp.identified
        assert fp.exact_vendor is None
