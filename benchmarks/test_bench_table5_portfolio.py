"""Table 5 -- the targeted-AS portfolio and campaign statistics.

Regenerates the per-AS rows (traces sent, addresses discovered,
confirmations) from the portfolio plus the simulated campaign's own
discovery counts, and asserts the paper's bookkeeping: 60 ASes, 25/10
confirmations, 19 exclusions, 41 analyzed.
"""

from repro.topogen.as_types import Confirmation
from repro.topogen.portfolio import default_portfolio
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_table5_portfolio(benchmark, portfolio_results):
    portfolio = benchmark(default_portfolio)

    rows = []
    for spec in portfolio:
        discovered = ""
        result = portfolio_results.get(spec.as_id)
        if result is not None:
            discovered = len(result.dataset.distinct_addresses())
        rows.append(
            (
                spec.label,
                spec.asn,
                spec.name,
                str(spec.role),
                f"{spec.traces_sent:,}",
                f"{spec.ips_discovered:,}",
                discovered,
                str(spec.confirmation),
                "yes" if spec.analyzed else "excluded",
            )
        )
    emit(
        format_table(
            [
                "AS",
                "ASN",
                "Name",
                "Type",
                "Traces (paper)",
                "IPs (paper)",
                "IPs (sim)",
                "Confirmed",
                "Analyzed",
            ],
            rows,
            title="Table 5 -- targeted ASes",
        )
    )

    assert len(portfolio) == 60
    assert len(portfolio.analyzed()) == 41
    confirmations = [s.confirmation for s in portfolio]
    assert confirmations.count(Confirmation.CISCO) == 25
    assert confirmations.count(Confirmation.SURVEY) == 10
    assert confirmations.count(Confirmation.NONE) == 25
    # the simulated campaign discovers addresses in every analyzed AS
    for as_id, result in portfolio_results.items():
        assert len(result.dataset.distinct_addresses()) > 0, as_id
    # and simulated discovery scales with the paper's (rank correlation
    # over three orders of magnitude of table sizes)
    paper = [portfolio.spec(i).ips_discovered for i in portfolio_results]
    sim = [
        len(portfolio_results[i].dataset.distinct_addresses())
        for i in portfolio_results
    ]
    big_paper = paper.index(max(paper))
    small_paper = paper.index(min(paper))
    assert sim[big_paper] >= sim[small_paper]
