"""Fig. 5 / Table 2 -- the operator survey (N = 46).

Regenerates both panels: vendor shares (5a) and SR-MPLS usage (5b),
plus the SRGB/SRLB default-retention shares quoted in Sec. 3.
"""

import pytest

from repro.analysis.survey import generate_survey, summarize_survey
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig5_survey(benchmark):
    summary = benchmark(
        lambda: summarize_survey(generate_survey(seed=0))
    )
    emit(
        format_table(
            ["Vendor", "Share"],
            [(v, f"{s:.2f}") for v, s in summary.vendors_ranked()],
            title="Fig. 5a -- hardware equipment used for SR-MPLS",
        )
    )
    emit(
        format_table(
            ["Usage", "Share"],
            [(u, f"{s:.2f}") for u, s in summary.usages_ranked()],
            title="Fig. 5b -- SR-MPLS usage",
        )
    )
    emit(
        format_table(
            ["Question", "Keep default"],
            [
                ("SRGB", f"{summary.srgb_default_share:.0%}"),
                ("SRLB", f"{summary.srlb_default_share:.0%}"),
            ],
            title="Sec. 3 -- default range retention",
        )
    )

    # Shape: N = 46; Cisco & Juniper dominate; resilience ranks first;
    # simplification beats TE; best-effort ~40%; 70% / 67% defaults.
    assert summary.num_respondents == 46
    ranked_vendors = [v for v, _ in summary.vendors_ranked()]
    assert set(ranked_vendors[:2]) == {"Cisco", "Juniper"}
    usages = summary.usage_shares
    assert usages["Network Resilience"] == max(usages.values())
    assert usages["Simplify MPLS Management"] > usages["Traffic Engineering"]
    assert usages["Carry Best Effort Traffic"] == pytest.approx(0.4, abs=0.1)
    assert summary.srgb_default_share == pytest.approx(0.70, abs=0.03)
    assert summary.srlb_default_share == pytest.approx(0.67, abs=0.03)
