"""Unit and property tests for IPv4 addressing primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addressing import IPv4Address, IPv4Prefix, PrefixAllocator


class TestIPv4Address:
    def test_from_string_roundtrip(self):
        assert str(IPv4Address.from_string("192.0.2.1")) == "192.0.2.1"

    def test_value_arithmetic(self):
        assert IPv4Address.from_string("10.0.0.0").value == 10 << 24

    def test_zero_and_max(self):
        assert str(IPv4Address(0)) == "0.0.0.0"
        assert str(IPv4Address(2**32 - 1)) == "255.255.255.255"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address(2**32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_malformed_strings_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                IPv4Address.from_string(bad)

    def test_ordering(self):
        a = IPv4Address.from_string("10.0.0.1")
        b = IPv4Address.from_string("10.0.0.2")
        assert a < b

    def test_addition(self):
        a = IPv4Address.from_string("10.0.0.1")
        assert str(a + 5) == "10.0.0.6"

    def test_hashable(self):
        a = IPv4Address.from_string("10.0.0.1")
        b = IPv4Address.from_string("10.0.0.1")
        assert len({a, b}) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_string_roundtrip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.from_string(str(address)) == address

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_int_conversion(self, value):
        assert int(IPv4Address(value)) == value


class TestIPv4Prefix:
    def test_from_string(self):
        p = IPv4Prefix.from_string("198.51.100.0/24")
        assert p.length == 24
        assert p.num_addresses() == 256

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix.from_string("198.51.100.1/24")

    def test_missing_length_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix.from_string("198.51.100.0")

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix(IPv4Address(0), 33)

    def test_contains(self):
        p = IPv4Prefix.from_string("198.51.100.0/24")
        assert p.contains(IPv4Address.from_string("198.51.100.255"))
        assert not p.contains(IPv4Address.from_string("198.51.101.0"))

    def test_address_at(self):
        p = IPv4Prefix.from_string("198.51.100.0/24")
        assert str(p.address_at(7)) == "198.51.100.7"
        with pytest.raises(IndexError):
            p.address_at(256)

    def test_hosts_iteration(self):
        p = IPv4Prefix.from_string("192.0.2.0/30")
        assert [str(a) for a in p.hosts()] == [
            "192.0.2.0",
            "192.0.2.1",
            "192.0.2.2",
            "192.0.2.3",
        ]

    def test_subnets(self):
        p = IPv4Prefix.from_string("10.0.0.0/24")
        subs = list(p.subnets(26))
        assert len(subs) == 4
        assert str(subs[1]) == "10.0.0.64/26"

    def test_subnets_shorter_rejected(self):
        p = IPv4Prefix.from_string("10.0.0.0/24")
        with pytest.raises(ValueError):
            list(p.subnets(23))

    def test_slash32(self):
        p = IPv4Prefix.from_string("10.0.0.1/32")
        assert p.num_addresses() == 1
        assert p.contains(IPv4Address.from_string("10.0.0.1"))

    @given(st.integers(min_value=0, max_value=32))
    def test_netmask_and_hostmask_complementary(self, length):
        p = IPv4Prefix(IPv4Address(0), length)
        assert p.netmask() | p.host_mask() == 0xFFFFFFFF
        assert p.netmask() & p.host_mask() == 0

    @given(
        st.integers(min_value=8, max_value=30),
        st.integers(min_value=0, max_value=2**20),
    )
    def test_every_generated_host_is_contained(self, length, salt):
        base = (salt << (32 - 8)) % (2**32)
        base &= ~((1 << (32 - length)) - 1) & 0xFFFFFFFF
        p = IPv4Prefix(IPv4Address(base), length)
        assert p.contains(p.address_at(0))
        assert p.contains(p.address_at(p.num_addresses() - 1))


class TestPrefixAllocator:
    def test_sequential_disjoint(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/16"))
        a = alloc.allocate(24)
        b = alloc.allocate(24)
        assert a != b
        assert not a.contains(b.network)
        assert not b.contains(a.network)

    def test_alignment(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/16"))
        alloc.allocate(31)
        p = alloc.allocate(24)  # must skip to the next /24 boundary
        assert p.network.value % 256 == 0

    def test_exhaustion(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/30"))
        alloc.allocate(31)
        alloc.allocate(31)
        with pytest.raises(MemoryError):
            alloc.allocate(31)

    def test_larger_than_supernet_rejected(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/16"))
        with pytest.raises(ValueError):
            alloc.allocate(8)

    def test_remaining_shrinks(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/16"))
        before = alloc.remaining_addresses()
        alloc.allocate(24)
        assert alloc.remaining_addresses() == before - 256

    @given(st.lists(st.integers(min_value=20, max_value=32), max_size=30))
    def test_allocations_never_overlap(self, lengths):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/8"))
        prefixes = [alloc.allocate(length) for length in lengths]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1 :]:
                assert not a.contains(b.network)
                assert not b.contains(a.network)
