"""Label Distribution Protocol (RFC 5036) control plane.

LDP's defining property for AReST (Sec. 2.1 of the paper) is that label
bindings are *local*: every LSR independently picks a label for each FEC
out of its own dynamic pool, so the same 20-bit value (almost) never
repeats on consecutive hops of a traceroute.  The simulator reproduces
exactly that: per-router allocation cursors start at a router-specific
pseudo-random offset inside the vendor's dynamic pool, giving realistic,
uncorrelated label values.

Penultimate-hop popping is modelled through the reserved implicit-null
label: the egress of a FEC advertises label 3, instructing its upstream
neighbour to pop instead of swap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.netsim.addressing import IPv4Prefix
from repro.netsim.mpls import ReservedLabel
from repro.netsim.topology import Network
from repro.netsim.vendors import Vendor, VENDOR_PROFILES, LabelRange

_FALLBACK_POOL = LabelRange(16, 1_048_575)


@dataclass(frozen=True, slots=True)
class Fec:
    """A Forwarding Equivalence Class: a destination prefix and its egress.

    The egress router is the LSR where the LSP ends (the prefix
    originator or the AS exit point); it advertises implicit-null so its
    upstream neighbour pops (PHP).
    """

    prefix: IPv4Prefix
    egress: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"FEC({self.prefix} via #{self.egress})"


def _pool_for(vendor: Vendor) -> LabelRange:
    profile = VENDOR_PROFILES.get(vendor)
    return profile.dynamic_pool if profile else _FALLBACK_POOL


#: real allocators hand out labels sequentially from the pool base;
#: uptime and churn spread routers over roughly this many values
_ALLOCATION_SPREAD = 40_000


def _start_offset(seed: int, router_id: int, pool: LabelRange) -> int:
    """Deterministic pseudo-random allocation start within the pool.

    Confined to the low end of the pool: real dynamic labels cluster
    near the base (the Fig. 16 skew toward small 20-bit values).
    """
    digest = hashlib.sha256(
        f"ldp:{seed}:{router_id}".encode("ascii")
    ).digest()
    spread = min(pool.size(), _ALLOCATION_SPREAD)
    return int.from_bytes(digest[:8], "big") % spread


class LdpState:
    """Converged LDP label bindings for one network.

    ``binding(router, fec)`` answers "which label did *router* advertise
    for *fec*" -- exactly what an upstream neighbour uses as outgoing
    label.  Bindings are created lazily on first use and are stable for
    the lifetime of the object.
    """

    def __init__(self, network: Network, seed: int = 0) -> None:
        self._network = network
        self._seed = seed
        self._fecs: dict[IPv4Prefix, Fec] = {}
        self._bindings: dict[tuple[int, IPv4Prefix], int] = {}
        self._cursors: dict[int, int] = {}
        #: reverse map for the forwarding plane: (router, label) -> fec
        self._label_to_fec: dict[tuple[int, int], Fec] = {}

    # -- FEC management -----------------------------------------------------

    def register_fec(self, prefix: IPv4Prefix, egress: int) -> Fec:
        """Declare a FEC; idempotent for identical (prefix, egress)."""
        existing = self._fecs.get(prefix)
        if existing is not None:
            if existing.egress != egress:
                raise ValueError(
                    f"FEC {prefix} already registered with egress "
                    f"#{existing.egress}, not #{egress}"
                )
            return existing
        fec = Fec(prefix=prefix, egress=egress)
        self._fecs[prefix] = fec
        return fec

    def fec_for_prefix(self, prefix: IPv4Prefix) -> Fec | None:
        """The FEC registered for a prefix, or None."""
        return self._fecs.get(prefix)

    def fecs(self) -> list[Fec]:
        """Every registered FEC."""
        return list(self._fecs.values())

    # -- binding allocation --------------------------------------------------

    def binding(self, router_id: int, fec: Fec) -> int:
        """Label advertised by ``router_id`` for ``fec``.

        The egress advertises :data:`ReservedLabel.IMPLICIT_NULL` for its
        own FECs (PHP).  Non-LDP routers never advertise bindings; asking
        for one is a caller bug.
        """
        router = self._network.router(router_id)
        if not router.ldp_enabled:
            raise ValueError(f"router {router.name} does not speak LDP")
        if router_id == fec.egress:
            return int(ReservedLabel.IMPLICIT_NULL)
        key = (router_id, fec.prefix)
        label = self._bindings.get(key)
        if label is None:
            label = self._allocate(router_id)
            self._bindings[key] = label
            self._label_to_fec[(router_id, label)] = fec
        return label

    def _allocate(self, router_id: int) -> int:
        router = self._network.router(router_id)
        pool = _pool_for(router.vendor)
        cursor = self._cursors.get(router_id)
        if cursor is None:
            cursor = _start_offset(self._seed, router_id, pool)
        # Linear scan from the cursor; collisions with already-assigned
        # labels on this router are skipped (labels are per-router unique).
        for _ in range(pool.size()):
            label = pool.low + cursor
            cursor = (cursor + 1) % pool.size()
            if (router_id, label) not in self._label_to_fec:
                self._cursors[router_id] = cursor
                return label
        raise MemoryError(  # pragma: no cover - pools are huge
            f"label pool exhausted on router #{router_id}"
        )

    # -- forwarding-plane lookups --------------------------------------------

    def fec_for_label(self, router_id: int, label: int) -> Fec | None:
        """FEC that ``router_id`` bound ``label`` to, if any."""
        return self._label_to_fec.get((router_id, label))

    def advertised_labels(self, router_id: int) -> dict[int, Fec]:
        """All (label -> fec) bindings advertised by one router."""
        return {
            label: fec
            for (rid, label), fec in self._label_to_fec.items()
            if rid == router_id
        }
