"""Interrupt resilience: SIGINT mid-portfolio, SIGKILLed workers.

The contract under test: however a campaign dies -- operator Ctrl-C,
a worker killed from outside -- the checkpoint on disk stays loadable,
and ``resume=True`` completes the portfolio with a report (and final
checkpoint bytes) identical to a run that was never interrupted.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.campaign import CampaignCheckpoint, CampaignRunner

# Six ASes so that with jobs=2 the SIGINT (delivered right after the
# first AS banks) always lands while some ASes are still undispatched:
# at that instant at most four slots have ever been filled.
AS_IDS = [46, 27, 31, 59, 7, 15]
KNOBS = dict(seed=1, vps_per_as=2, targets_per_as=8)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for in-test worker subclasses",
)


def _report_fingerprint(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    """Reference run: never interrupted, checkpointed."""
    path = tmp_path_factory.mktemp("ref") / "campaign.ckpt"
    report = CampaignRunner(**KNOBS).run_portfolio(
        as_ids=AS_IDS, checkpoint=path
    )
    return _report_fingerprint(report), path.read_bytes()


class SigintMidPortfolio(CampaignRunner):
    """Delivers a real SIGINT to the process during the second AS."""

    def run_as(self, as_id):
        if as_id == AS_IDS[1]:
            os.kill(os.getpid(), signal.SIGINT)
        return super().run_as(as_id)


class KillsWorkerOnce(CampaignRunner):
    """SIGKILLs its own process for one AS -- only in pool workers.

    The marker directory distinguishes first and second dispatch, so
    both attempts die and the circuit breaker must open.
    """

    def __init__(self, *args, marker_dir=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.marker_dir = marker_dir

    def _spawn_config(self):
        return dict(super()._spawn_config(), marker_dir=self.marker_dir)

    def run_as(self, as_id):
        if as_id == AS_IDS[1]:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().run_as(as_id)


class TestSigintInProcess:
    """jobs=1: the first SIGINT finishes the in-flight AS, then drains."""

    def test_sigint_yields_partial_report_and_intact_checkpoint(
        self, tmp_path, uninterrupted
    ):
        ref_fingerprint, ref_bytes = uninterrupted
        path = tmp_path / "campaign.ckpt"
        runner = SigintMidPortfolio(**KNOBS)
        report = runner.run_portfolio(as_ids=AS_IDS, checkpoint=path)

        assert report.interrupted
        assert "INTERRUPTED" in report.summary()
        # The AS that was in flight when SIGINT landed still completed
        # and was banked; later ASes were never dispatched.
        assert sorted(report) == sorted(AS_IDS[:2])
        store = CampaignCheckpoint(
            path, CampaignRunner(**KNOBS)._config_signature()
        )
        assert sorted(store.load()) == sorted(AS_IDS[:2])

        # Resume with a plain runner: identical report and bytes.
        resumed = CampaignRunner(**KNOBS).run_portfolio(
            as_ids=AS_IDS, checkpoint=path, resume=True
        )
        assert sorted(resumed.resumed_as_ids) == sorted(AS_IDS[:2])
        assert _report_fingerprint(resumed) == ref_fingerprint
        assert path.read_bytes() == ref_bytes


_DRIVER = textwrap.dedent(
    """
    import os, signal, sys, threading, time
    from pathlib import Path

    from repro.campaign import CampaignRunner

    class SlowRunner(CampaignRunner):
        # The sleep pads wall-clock (so the SIGINT lands mid-portfolio)
        # without touching any measured data.
        def run_as(self, as_id):
            result = super().run_as(as_id)
            time.sleep(0.25)
            return result

    checkpoint = sys.argv[1]
    as_ids = [int(a) for a in sys.argv[2].split(",")]

    def killer():
        path = Path(checkpoint)
        while True:
            if path.exists() and len(path.read_text().splitlines()) >= 2:
                break  # first AS banked; portfolio is mid-flight
            time.sleep(0.01)
        os.kill(os.getpid(), signal.SIGINT)

    threading.Thread(target=killer, daemon=True).start()
    runner = SlowRunner(seed=1, vps_per_as=2, targets_per_as=8)
    report = runner.run_portfolio(
        as_ids=as_ids, checkpoint=checkpoint, jobs=2, timeout_per_as=60
    )
    completed = ",".join(str(a) for a in sorted(report))
    print(f"completed={completed}", flush=True)
    sys.exit(130 if report.interrupted else 0)
    """
)


class TestSigintParallel:
    """jobs=2: a real SIGINT drains in-flight workers, then resume heals."""

    def test_sigint_then_resume_matches_uninterrupted(
        self, tmp_path, uninterrupted
    ):
        ref_fingerprint, ref_bytes = uninterrupted
        path = tmp_path / "campaign.ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _DRIVER,
                str(path),
                ",".join(str(a) for a in AS_IDS),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 130, proc.stderr
        # Not everything ran: the interrupt cut the portfolio short.
        completed_line = [
            line
            for line in proc.stdout.splitlines()
            if line.startswith("completed=")
        ][0]
        completed = {
            int(a)
            for a in completed_line.removeprefix("completed=").split(",")
            if a
        }
        assert completed < set(AS_IDS)

        # The checkpoint survived the interrupt intact and loadable.
        store = CampaignCheckpoint(
            path, CampaignRunner(**KNOBS)._config_signature()
        )
        banked = store.load()
        assert set(banked) <= set(AS_IDS)
        assert banked  # at least the AS that triggered the killer

        # Resume completes and matches the uninterrupted run
        # byte-for-byte: same report JSON, same checkpoint bytes.
        resumed = CampaignRunner(**KNOBS).run_portfolio(
            as_ids=AS_IDS, checkpoint=path, resume=True
        )
        assert not resumed.interrupted
        assert _report_fingerprint(resumed) == ref_fingerprint
        assert path.read_bytes() == ref_bytes


class TestSigkilledWorker:
    """A worker killed from outside is contained and quarantined."""

    def test_poison_as_quarantined_rest_complete(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        runner = KillsWorkerOnce(**KNOBS)
        report = runner.run_portfolio(
            as_ids=AS_IDS,
            checkpoint=path,
            jobs=2,
            timeout_per_as=60,
        )
        victim = AS_IDS[1]
        assert sorted(report) == sorted(a for a in AS_IDS if a != victim)
        assert victim in report.quarantined
        quarantine = report.quarantined[victim]
        assert quarantine.reason == "crash"
        assert quarantine.attempts == 2  # one re-dispatch before the breaker
        assert victim not in report.failures

        # The quarantine is banked: resume restores it instead of
        # re-dispatching a proven-poisonous AS.
        resumed = KillsWorkerOnce(**KNOBS).run_portfolio(
            as_ids=AS_IDS, checkpoint=path, resume=True, jobs=2
        )
        assert victim in resumed.quarantined
        assert sorted(resumed.resumed_as_ids) == sorted(
            a for a in AS_IDS if a != victim
        )
        assert _report_fingerprint(resumed) == _report_fingerprint(report)
