"""SR-MPLS deployment quantification (Fig. 10, Sec. 7.1).

Two complementary views per AS, both computed with the conservative
strong-flag rule (CVR, CO, LSVR, LVR only):

- Fig. 10a: the share of in-AS traces that traverse at least one
  SR-MPLS / classic-MPLS / plain-IP hop;
- Fig. 10b: the number of *distinct interface addresses* seen in each
  mechanism (a trace-level hit can be a single hop, so interface counts
  temper the picture -- the paper finds SR interfaces are <= 10% of
  observed addresses in 88% of ASes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.campaign.runner import AsCampaignResult


@dataclass(frozen=True, slots=True)
class DeploymentRow:
    """One AS's Fig. 10 numbers."""

    as_id: int
    name: str
    traces_in_as: int
    share_hitting_sr: float
    share_hitting_mpls: float
    share_hitting_ip: float
    sr_interfaces: int
    mpls_interfaces: int
    ip_interfaces: int

    @property
    def total_interfaces(self) -> int:
        """All distinct interfaces observed in the AS."""
        return self.sr_interfaces + self.mpls_interfaces + self.ip_interfaces

    @property
    def sr_interface_share(self) -> float:
        """SR interfaces over all observed interfaces."""
        total = self.total_interfaces
        return self.sr_interfaces / total if total else 0.0


def deployment_rows(
    results: Mapping[int, AsCampaignResult]
) -> list[DeploymentRow]:
    """Fig. 10 rows, ordered by AS id."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        analysis = result.analysis
        n = analysis.traces_in_as or 1
        rows.append(
            DeploymentRow(
                as_id=as_id,
                name=result.spec.name,
                traces_in_as=analysis.traces_in_as,
                share_hitting_sr=analysis.traces_hitting_sr / n,
                share_hitting_mpls=analysis.traces_hitting_mpls / n,
                share_hitting_ip=analysis.traces_hitting_ip / n,
                sr_interfaces=len(analysis.sr_addresses),
                mpls_interfaces=len(analysis.mpls_addresses),
                ip_interfaces=len(analysis.ip_addresses),
            )
        )
    return rows


def share_of_ases_with_low_sr_interfaces(
    rows: list[DeploymentRow], threshold: float = 0.10
) -> float:
    """Sec. 7.1: "for 88% of the analyzed ASes, the proportion of
    SR-related interfaces represents 10% or less"."""
    if not rows:
        return 0.0
    low = sum(1 for r in rows if r.sr_interface_share <= threshold)
    return low / len(rows)
