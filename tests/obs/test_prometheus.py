"""Format tests for the Prometheus textfile exposition.

The exposition is an operator contract: dashboards and alert rules key
on exact family names and label sets, so every family the renderer
promises -- including the churn-safety surface added with the dynamics
engine -- is pinned here line by line.
"""

import json
from pathlib import Path

from repro.obs.prometheus import (
    escape_label_value,
    render_ingest_metrics,
    render_prometheus,
    render_scale_metrics,
)
from repro.obs.summary import TelemetrySummary, summarize_telemetry


def _summary(tmp_path) -> TelemetrySummary:
    summary = TelemetrySummary(directory=tmp_path)
    summary.stage_seconds = {46: {"probe": 1.25}}
    summary.counters = {
        46: {
            "traces_collected": 40,
            "traces_quarantined": 3,
            "fault_probe_loss": 7,
            "fault_rate_limited": 2,
        }
    }
    summary.totals = {
        "traces_collected": 40,
        "traces_quarantined": 3,
        "fault_probe_loss": 7,
        "fault_rate_limited": 2,
    }
    summary.gauges = {
        46: {
            "walkcache_epoch_transitions": 5.0,
            "walkcache_stale_walk_fallbacks": 2.0,
            "churn_links_failed": 4.0,
        }
    }
    return summary


class TestRenderPrometheus:
    def test_quarantine_total_is_promoted(self, tmp_path):
        text = render_prometheus(_summary(tmp_path))
        assert "# TYPE arest_traces_quarantined gauge" in text
        assert "arest_traces_quarantined 3" in text.splitlines()

    def test_quarantine_zero_is_still_exposed(self, tmp_path):
        # zero is the healthy reading, not an absent one: alert rules
        # need the series to exist to distinguish "clean" from "no data"
        summary = _summary(tmp_path)
        summary.totals.pop("traces_quarantined")
        text = render_prometheus(summary)
        assert "arest_traces_quarantined 0" in text.splitlines()

    def test_fault_classes_become_a_family(self, tmp_path):
        text = render_prometheus(_summary(tmp_path))
        assert "# TYPE arest_fault_events_total counter" in text
        lines = text.splitlines()
        assert 'arest_fault_events_total{class="probe_loss"} 7' in lines
        assert 'arest_fault_events_total{class="rate_limited"} 2' in lines

    def test_epoch_and_stale_counters_are_scoped(self, tmp_path):
        text = render_prometheus(_summary(tmp_path))
        lines = text.splitlines()
        assert "# TYPE arest_epoch_transitions_total counter" in lines
        assert 'arest_epoch_transitions_total{scope="46"} 5' in lines
        assert "# TYPE arest_stale_walk_fallbacks_total counter" in lines
        assert 'arest_stale_walk_fallbacks_total{scope="46"} 2' in lines

    def test_generic_gauge_family_carries_churn_tallies(self, tmp_path):
        lines = render_prometheus(_summary(tmp_path)).splitlines()
        assert "# TYPE arest_gauge gauge" in lines
        assert 'arest_gauge{scope="46",name="churn_links_failed"} 4' in lines

    def test_no_fault_family_without_fault_counters(self, tmp_path):
        summary = _summary(tmp_path)
        summary.totals = {"traces_collected": 40}
        summary.counters = {46: {"traces_collected": 40}}
        text = render_prometheus(summary)
        assert "arest_fault_events_total" not in text

    def test_static_campaign_omits_churn_families_but_not_gauges(
        self, tmp_path
    ):
        summary = _summary(tmp_path)
        summary.gauges = {46: {"walkcache_hits": 12.0}}
        text = render_prometheus(summary)
        assert "arest_epoch_transitions_total" not in text
        assert "arest_stale_walk_fallbacks_total" not in text
        assert (
            'arest_gauge{scope="46",name="walkcache_hits"} 12'
            in text.splitlines()
        )

    def test_label_values_are_escaped(self, tmp_path):
        summary = TelemetrySummary(directory=tmp_path)
        summary.counters = {'we"ird': {"n": 1}}
        summary.totals = {"n": 1}
        text = render_prometheus(summary)
        assert 'scope="we\\"ird"' in text

    def test_render_ends_with_newline(self, tmp_path):
        assert render_prometheus(_summary(tmp_path)).endswith("\n")


class TestLabelValueEscaping:
    """The three exposition-format escapes, pinned one by one.

    ``escape_label_value`` is the single escape point for every label
    value the package emits; an unescaped backslash, quote or newline
    would corrupt the whole scrape, not just one sample.
    """

    def test_backslash(self):
        assert escape_label_value(r"a\b") == r"a\\b"

    def test_double_quote(self):
        assert escape_label_value('say "hi"') == r"say \"hi\""

    def test_newline(self):
        assert escape_label_value("two\nlines") == r"two\nlines"

    def test_backslash_escapes_first(self):
        # were the order reversed, the backslash introduced by the
        # quote escape would itself get doubled
        assert escape_label_value('\\"') == r"\\\""

    def test_all_three_together(self):
        assert (
            escape_label_value('a\\b"c\nd') == r"a\\b\"c\nd"
        )

    def test_non_strings_are_stringified(self):
        assert escape_label_value(46) == "46"


class TestRenderIngestMetrics:
    def _render(self, **overrides) -> str:
        kwargs = dict(
            accepted_total=10,
            rejected={"bad-json": 2, "queue-full": 5},
            queue_depth=3,
            queue_capacity=64,
            traces_quarantined=1,
        )
        kwargs.update(overrides)
        return render_ingest_metrics(**kwargs)

    def test_all_families_present(self):
        lines = self._render().splitlines()
        assert "arest_ingest_accepted_total 10" in lines
        assert (
            'arest_ingest_rejected_total{reason="bad-json"} 2' in lines
        )
        assert (
            'arest_ingest_rejected_total{reason="queue-full"} 5' in lines
        )
        assert "arest_queue_depth 3" in lines
        assert "arest_queue_capacity 64" in lines
        assert "arest_service_draining 0" in lines
        assert "arest_traces_quarantined 1" in lines

    def test_every_family_is_typed(self):
        text = self._render()
        for family in (
            "arest_ingest_accepted_total",
            "arest_ingest_rejected_total",
            "arest_queue_depth",
            "arest_queue_capacity",
            "arest_service_draining",
            "arest_traces_quarantined",
        ):
            assert f"# TYPE {family} " in text

    def test_draining_flag(self):
        assert "arest_service_draining 1" in self._render(
            draining=True
        ).splitlines()

    def test_reason_labels_are_escaped(self):
        text = self._render(rejected={'odd"reason\n\\': 1})
        assert (
            'arest_ingest_rejected_total{reason="odd\\"reason\\n\\\\"} 1'
            in text.splitlines()
        )

    def test_reasons_render_sorted(self):
        text = self._render()
        assert text.index('reason="bad-json"') < text.index(
            'reason="queue-full"'
        )


class TestEndToEnd:
    def test_jsonl_gauges_flow_through_to_exposition(self, tmp_path):
        """gauge records written by the sink surface as the scoped
        churn-safety families after a summarize/render round trip."""
        records = [
            {"kind": "counter", "scope": 46, "name": "traces_collected",
             "value": 10},
            {"kind": "counter", "scope": 46, "name": "fault_probe_loss",
             "value": 4},
            {"kind": "gauge", "scope": 46,
             "name": "walkcache_epoch_transitions", "value": 3},
            # a re-reported gauge is last-write-wins, never summed
            {"kind": "gauge", "scope": 46,
             "name": "walkcache_epoch_transitions", "value": 6},
            {"kind": "gauge", "scope": 46,
             "name": "walkcache_stale_walk_fallbacks", "value": 1},
            {"kind": "flush", "scope": 46},
        ]
        (tmp_path / "telemetry.jsonl").write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        summary = summarize_telemetry(tmp_path)
        assert summary.gauges[46]["walkcache_epoch_transitions"] == 6.0
        lines = render_prometheus(summary).splitlines()
        assert 'arest_epoch_transitions_total{scope="46"} 6' in lines
        assert 'arest_stale_walk_fallbacks_total{scope="46"} 1' in lines
        assert 'arest_fault_events_total{class="probe_loss"} 4' in lines


class TestRenderScaleMetrics:
    _STATS = {
        "shards_total": 6,
        "shards_probed": 4,
        "shards_resumed": 2,
        "shards_redispatched": 1,
        "shards_quarantined": 0,
        "leases_granted": 5,
        "leases_renewed": 17,
        "leases_expired": 1,
        "workers_spawned": 3,
        "workers_crashed": 1,
        "workers_recycled": 1,
        "ases_analyzed": 3,
        "traces_total": 432,
        "rss_peak_bytes": 104857600,
        "wall_seconds": 12.5,
    }

    def test_full_stats_render_every_family(self):
        lines = render_scale_metrics(self._STATS).splitlines()
        assert "arest_shards_total 6" in lines
        assert "arest_shards_probed_total 4" in lines
        assert "arest_shards_resumed_total 2" in lines
        assert "arest_shards_redispatched_total 1" in lines
        assert "arest_shards_quarantined_total 0" in lines
        assert "arest_leases_granted_total 5" in lines
        assert "arest_leases_renewed_total 17" in lines
        assert "arest_leases_expired_total 1" in lines
        assert "arest_workers_spawned_total 3" in lines
        assert "arest_workers_crashed_total 1" in lines
        assert "arest_workers_recycled_total 1" in lines
        assert "arest_ases_analyzed_total 3" in lines
        assert "arest_scale_traces_total 432" in lines
        assert "arest_rss_peak_bytes 104857600" in lines
        assert "arest_scale_wall_seconds 12.5" in lines

    def test_every_rendered_family_is_helped_and_typed(self):
        text = render_scale_metrics(self._STATS)
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            family = line.split(" ", 1)[0]
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text

    def test_absent_stats_are_omitted_not_zeroed(self):
        text = render_scale_metrics({"shards_total": 2, "traces_total": 9})
        assert "arest_shards_total 2" in text.splitlines()
        assert "arest_scale_traces_total 9" in text.splitlines()
        assert "rss_peak" not in text
        assert "lease" not in text

    def test_empty_stats_render_nothing(self):
        assert render_scale_metrics({}) == ""
