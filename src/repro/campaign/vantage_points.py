"""The vantage-point fleet (Table 4 of the paper).

50 virtual machines across four cloud providers and 28 countries; every
VP runs TNT and probes the same (shuffled) target lists.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """One measurement VM."""

    vp_id: str
    provider: str
    provider_asn: int
    city: str
    country: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.vp_id}({self.city}, {self.country})"


_AWS = ("Amazon AWS", 64512)
_DO = ("Digital Ocean", 14061)
_GCP = ("Google Cloud", 16550)
_VULTR = ("Vultr", 20473)

# (provider, city, country) -- Table 4 verbatim.
_TABLE4: tuple[tuple[tuple[str, int], str, str], ...] = (
    (_AWS, "Tokyo", "Japan"),
    (_AWS, "Seoul", "South Korea"),
    (_AWS, "Singapore", "Singapore"),
    (_AWS, "Sydney", "Australia"),
    (_AWS, "Montreal", "Canada"),
    (_AWS, "Oregon", "USA"),
    (_AWS, "Dublin", "Ireland"),
    (_AWS, "Virginia", "USA"),
    (_AWS, "Mumbai", "India"),
    (_AWS, "London", "UK"),
    (_AWS, "Frankfurt", "Germany"),
    (_AWS, "Paris", "France"),
    (_AWS, "Stockholm", "Sweden"),
    (_DO, "San Francisco", "USA"),
    (_GCP, "Iowa", "USA"),
    (_GCP, "Delhi", "India"),
    (_GCP, "Tel Aviv", "Israel"),
    (_GCP, "Melbourne", "Australia"),
    (_GCP, "Johannesburg", "South Africa"),
    (_GCP, "Sao Paulo", "Brazil"),
    (_GCP, "Hamina", "Finland"),
    (_GCP, "Salt Lake City", "USA"),
    (_GCP, "Milan", "Italy"),
    (_GCP, "Zurich", "Switzerland"),
    (_GCP, "Turin", "Italy"),
    (_GCP, "Berlin", "Germany"),
    (_GCP, "Mons", "Belgium"),
    (_GCP, "Warsaw", "Poland"),
    (_GCP, "Doha", "Qatar"),
    (_GCP, "Columbus", "USA"),
    (_GCP, "Jakarta", "Indonesia"),
    (_GCP, "Hong Kong", "China"),
    (_GCP, "Taiwan", "China"),
    (_GCP, "Santiago", "Chile"),
    (_GCP, "Osaka", "Japan"),
    (_VULTR, "Amsterdam", "Netherlands"),
    (_VULTR, "Madrid", "Spain"),
    (_VULTR, "Manchester", "United Kingdom"),
    (_VULTR, "New York", "USA"),
    (_VULTR, "Atlanta", "USA"),
    (_VULTR, "Chicago", "USA"),
    (_VULTR, "Dallas", "USA"),
    (_VULTR, "Honolulu", "USA"),
    (_VULTR, "Los Angeles", "USA"),
    (_VULTR, "Miami", "USA"),
    (_VULTR, "Seattle", "USA"),
    (_VULTR, "Silicon Valley", "USA"),
    (_VULTR, "Mexico City", "Mexico"),
    (_VULTR, "Toronto", "Canada"),
    (_VULTR, "Bangalore", "India"),
)


def default_vantage_points() -> tuple[VantagePoint, ...]:
    """The 50-VM fleet of Table 4."""
    vps = []
    for i, ((provider, asn), city, country) in enumerate(_TABLE4, start=1):
        vps.append(
            VantagePoint(
                vp_id=f"VM{i}",
                provider=provider,
                provider_asn=asn,
                city=city,
                country=country,
            )
        )
    return tuple(vps)
