"""JSON checkpointing for interrupted portfolio runs.

The checkpoint persists, per completed AS, exactly what the paper's
campaign would have banked on disk: the collected trace dataset and the
interface fingerprints (plus the fault/retry tallies incurred while
collecting them).  Everything downstream -- bdrmapIT annotation, the
AReST pipeline, alias resolution, ground truth -- is deterministic given
that data and the campaign seed, so resuming re-derives the analysis
without re-firing a single probe and produces a bit-identical report.

The file embeds a config signature (seed, probing knobs, fault plan,
retry policy); resuming under a different configuration raises
:class:`CheckpointMismatchError` rather than silently mixing campaigns.

Since version 2 the on-disk format is JSONL: a header line (kind,
version, config) followed by one line per banked AS.  Banking an AS
appends a single line instead of rewriting the whole file, and a run
killed mid-append at worst truncates the final line -- :meth:`load`
salvages every intact line before the damage, logs what it discarded,
and compacts the file, so ``--resume`` keeps working after a crash or
a partially-synced copy.  Version-1 checkpoints (one JSON object) are
still read transparently.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.dataset import TraceDataset, _trace_from_json, _trace_to_json
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.netsim.addressing import IPv4Address
from repro.netsim.faults import FaultCounters
from repro.netsim.vendors import Vendor
from repro.util.journal import (
    append_json_line,
    rewrite_json_lines,
    salvage_decode,
)
from repro.util.retry import RetryAccounting

_KIND = "arest-checkpoint"
_VERSION = 3

logger = logging.getLogger(__name__)


class CheckpointMismatchError(ValueError):
    """The checkpoint was written by a differently-configured campaign."""


@dataclass(slots=True)
class CheckpointEntry:
    """Banked measurement data for one completed AS."""

    dataset: TraceDataset
    fingerprints: dict[IPv4Address, Fingerprint]
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    retry_accounting: RetryAccounting = field(default_factory=RetryAccounting)


@dataclass(slots=True)
class FailureStub:
    """Banked record of one AS that failed deterministically mid-stage.

    Carries the fault/retry tallies the AS had already incurred when it
    failed, so a resumed run folds in exactly the same partial cost and
    reproduces the original report without re-running the failure.
    """

    stage: str
    error: str
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    retry_accounting: RetryAccounting = field(default_factory=RetryAccounting)

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "error": self.error,
            "fault_counters": self.fault_counters.as_dict(),
            "retry_accounting": self.retry_accounting.as_dict(),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "FailureStub":
        return cls(
            stage=str(record["stage"]),
            error=str(record["error"]),
            fault_counters=FaultCounters.from_dict(
                record.get("fault_counters", {})
            ),
            retry_accounting=RetryAccounting.from_dict(
                record.get("retry_accounting", {})
            ),
        )


@dataclass(slots=True)
class QuarantineStub:
    """Banked record of a poison AS (deadline/crash circuit breaker).

    Resume restores the quarantine instead of re-dispatching: an AS
    that hung or killed its worker twice has proven itself poisonous.
    Delete the checkpoint (or drop the line) to force a re-attempt.
    """

    reason: str
    attempts: int
    detail: str
    #: heartbeat stage the worker last reported before it was killed
    last_stage: str | None = None
    #: supervisor-observed seconds per heartbeat stage (post-mortem)
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        record = {
            "reason": self.reason,
            "attempts": self.attempts,
            "detail": self.detail,
        }
        if self.last_stage is not None:
            record["last_stage"] = self.last_stage
        if self.stage_seconds:
            record["stage_seconds"] = {
                stage: round(seconds, 3)
                for stage, seconds in sorted(self.stage_seconds.items())
            }
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "QuarantineStub":
        last_stage = record.get("last_stage")
        return cls(
            reason=str(record["reason"]),
            attempts=int(record["attempts"]),
            detail=str(record.get("detail", "")),
            last_stage=str(last_stage) if last_stage is not None else None,
            stage_seconds={
                str(stage): float(seconds)
                for stage, seconds in record.get(
                    "stage_seconds", {}
                ).items()
            },
        )


def _fingerprint_to_json(address: IPv4Address, fp: Fingerprint) -> dict:
    return {
        "addr": str(address),
        "method": fp.method.value,
        "vendor": fp.exact_vendor.value if fp.exact_vendor else None,
        "class": sorted(v.value for v in fp.vendor_class),
    }


def _fingerprint_from_json(record: dict) -> tuple[IPv4Address, Fingerprint]:
    address = IPv4Address.from_string(record["addr"])
    fp = Fingerprint(
        method=FingerprintMethod(record["method"]),
        exact_vendor=Vendor(record["vendor"]) if record["vendor"] else None,
        vendor_class=frozenset(Vendor(v) for v in record["class"]),
    )
    return address, fp


def _dataset_to_json(dataset: TraceDataset) -> dict:
    return {
        "target_asn": dataset.target_asn,
        "metadata": dataset.metadata,
        "traces": [_trace_to_json(t) for t in dataset],
    }


def _dataset_from_json(record: dict) -> TraceDataset:
    dataset = TraceDataset(
        target_asn=int(record["target_asn"]),
        metadata=dict(record.get("metadata", {})),
    )
    for trace in record.get("traces", ()):
        dataset.add(_trace_from_json(trace))
    return dataset


def _entry_to_json(entry: CheckpointEntry) -> dict:
    return {
        "dataset": _dataset_to_json(entry.dataset),
        "fingerprints": [
            _fingerprint_to_json(addr, fp)
            for addr, fp in sorted(
                entry.fingerprints.items(), key=lambda item: str(item[0])
            )
        ],
        "fault_counters": entry.fault_counters.as_dict(),
        "retry_accounting": entry.retry_accounting.as_dict(),
    }


def _entry_from_json(record: dict) -> CheckpointEntry:
    return CheckpointEntry(
        dataset=_dataset_from_json(record["dataset"]),
        fingerprints=dict(
            _fingerprint_from_json(fp) for fp in record.get("fingerprints", ())
        ),
        fault_counters=FaultCounters.from_dict(
            record.get("fault_counters", {})
        ),
        retry_accounting=RetryAccounting.from_dict(
            record.get("retry_accounting", {})
        ),
    )


#: discriminator key -> codec for each banked record kind
_RECORD_KINDS = {
    "entry": (_entry_to_json, _entry_from_json),
    "failure": (FailureStub.as_dict, FailureStub.from_dict),
    "quarantine": (QuarantineStub.as_dict, QuarantineStub.from_dict),
}


class CampaignCheckpoint:
    """One checkpoint file bound to one campaign configuration.

    Besides successful entries the file banks *failure stubs* (an AS
    that errored mid-stage, with its partial fault/retry tallies) and
    *quarantine stubs* (an AS whose worker hung or crashed past its
    re-dispatch budget), so a resumed run reproduces the original
    report exactly instead of re-running known-bad ASes.
    """

    def __init__(self, path: str | Path, config: dict) -> None:
        self._path = Path(path)
        self._config = config
        #: as_id -> (record kind, decoded object), in banking order
        self._records: dict[int, tuple[str, object]] = {}
        #: does the on-disk file hold exactly ``_records`` in JSONL form?
        self._synced = False

    @property
    def path(self) -> Path:
        """Location of the checkpoint file."""
        return self._path

    @property
    def _entries(self) -> dict[int, CheckpointEntry]:
        return {
            as_id: obj
            for as_id, (kind, obj) in self._records.items()
            if kind == "entry"
        }

    @property
    def completed_as_ids(self) -> list[int]:
        """ASes banked successfully so far, in completion order."""
        return list(self._entries)

    @property
    def banked_failures(self) -> dict[int, FailureStub]:
        """Failure stubs banked so far (populated by :meth:`load`)."""
        return {
            as_id: obj
            for as_id, (kind, obj) in self._records.items()
            if kind == "failure"
        }

    @property
    def banked_quarantines(self) -> dict[int, QuarantineStub]:
        """Quarantine stubs banked so far (populated by :meth:`load`)."""
        return {
            as_id: obj
            for as_id, (kind, obj) in self._records.items()
            if kind == "quarantine"
        }

    def load(self) -> dict[int, CheckpointEntry]:
        """Read banked entries; missing file means a fresh start.

        A truncated or garbled tail (crash mid-append, partial copy)
        does not lose the campaign: every intact line before the first
        damaged one is salvaged, the discard is logged, and the file is
        compacted to the salvaged prefix so the next append starts from
        a clean state.

        Raises :class:`CheckpointMismatchError` when the file was
        written under a different campaign configuration.
        """
        if not self._path.exists():
            return {}
        with self._path.open("r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        header_line = lines[0] if lines else ""
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise ValueError(
                f"not an AReST checkpoint (unparseable header): "
                f"{self._path}"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != _KIND:
            raise ValueError(f"not an AReST checkpoint: {self._path}")
        if header.get("config") != self._config:
            raise CheckpointMismatchError(
                f"checkpoint {self._path} was written by a different "
                f"campaign configuration; delete it or rerun with the "
                f"original settings"
            )
        if "completed" in header:
            # Legacy v1: the whole file is one JSON object.
            self._records = {
                int(as_id): ("entry", _entry_from_json(entry))
                for as_id, entry in header.get("completed", {}).items()
            }
            self._flush()  # upgrade to JSONL on the spot
            return dict(self._entries)
        self._records = {}

        def decode(record: dict) -> tuple[int, str, object]:
            as_id = int(record["as_id"])
            kind = next(k for k in _RECORD_KINDS if k in record)
            return as_id, kind, _RECORD_KINDS[kind][1](record[kind])

        # First damaged line: everything after it is suspect too --
        # salvage the intact prefix and drop the rest.
        decoded, damaged = salvage_decode(
            lines[1:],
            decode,
            path=self._path,
            label="checkpoint",
            noun="banked AS(es)",
            logger=logger,
        )
        for as_id, kind, obj in decoded:
            self._records[as_id] = (kind, obj)
        if damaged:
            self._flush()  # compact away the damaged tail
        else:
            self._synced = True
        return dict(self._entries)

    def record(self, as_id: int, entry: CheckpointEntry) -> None:
        """Bank one completed AS."""
        self._bank(as_id, "entry", entry)

    def record_failure(self, as_id: int, stub: FailureStub) -> None:
        """Bank one deterministic per-AS failure with its partial tallies."""
        self._bank(as_id, "failure", stub)

    def record_quarantine(self, as_id: int, stub: QuarantineStub) -> None:
        """Bank one circuit-broken AS so resume does not re-dispatch it."""
        self._bank(as_id, "quarantine", stub)

    def _bank(self, as_id: int, kind: str, obj: object) -> None:
        """Durably append one record (or rewrite when out of sync).

        Appends are flushed and fsynced before returning, so a crash
        after :meth:`record` returns can never lose the banked AS; a
        crash *during* the append at worst truncates the final line,
        which :meth:`load` salvages.
        """
        replacing = self._synced and as_id in self._records
        self._records[as_id] = (kind, obj)
        if self._synced and not replacing:
            encode = _RECORD_KINDS[kind][0]
            append_json_line(self._path, {"as_id": as_id, kind: encode(obj)})
        else:
            self._flush()

    def compact(self, order: list[int] | None = None) -> None:
        """Atomically rewrite the file, optionally in canonical order.

        ``order`` lists as_ids in the desired on-disk order (ids not in
        the list keep their banking order, after the ordered prefix).
        Runs that finish cleanly compact in portfolio order, so a
        checkpoint's bytes are identical however the campaign got there
        -- serial, parallel, or interrupted-then-resumed.
        """
        if order is not None:
            ordered = {
                as_id: self._records[as_id]
                for as_id in order
                if as_id in self._records
            }
            for as_id, record in self._records.items():
                ordered.setdefault(as_id, record)
            if list(ordered) == list(self._records) and self._synced:
                return  # already canonical on disk
            self._records = ordered
        self._flush()

    def _flush(self) -> None:
        """Atomically rewrite header + one line per banked AS."""
        rewrite_json_lines(
            self._path,
            {"kind": _KIND, "version": _VERSION, "config": self._config},
            (
                {"as_id": as_id, _kind: _RECORD_KINDS[_kind][0](obj)}
                for as_id, (_kind, obj) in self._records.items()
            ),
        )
        self._synced = True


# -- shard-scoped checkpointing (format v4) ------------------------------------

_SHARD_KIND = "arest-shard-checkpoint"
_SHARD_VERSION = 4


class ShardCheckpoint:
    """Shard-scoped checkpoint for paper-scale campaigns (format v4).

    Where the per-AS checkpoint banks whole trace datasets, the shard
    checkpoint banks only *facts about* the data -- per-shard probe
    records (spill file name, per-VP trace counts and SHA-256 digests,
    fault/retry tallies) and per-AS analysis summaries -- while the
    traces themselves live in the spill files the records point at.
    That keeps the checkpoint tiny at a million traces and makes resume
    O(records), not O(traces).

    Crash-safety contract (the order matters):

    1. a shard's spill file is atomically renamed into place *first*;
    2. its probe record is durably appended *second*.

    A crash between the two leaves a spill with no record: resume
    re-runs the shard and the atomic re-write replaces the orphan with
    byte-identical content.  A crash mid-append truncates at most the
    final line, which :meth:`load` salvages.  Either way: zero traces
    lost, zero traces duplicated.

    Canonical form: while a run is live, records sit in banking order
    and the header carries the shard ``layout`` (so resume re-derives
    the same shard plan).  On clean completion
    :meth:`compact_canonical` rewrites the file as per-VP probe lines
    plus per-AS analysis lines, sorted, with every partition-dependent
    detail (bucket numbers, spill names, layout) dropped -- so the
    final checkpoint bytes are identical for **any** ``--jobs`` or
    ``--shards`` value, serial, parallel, or crashed-and-resumed.

    Like the v3 format, the header embeds a config signature and
    resuming under a different configuration raises
    :class:`CheckpointMismatchError`.  The layout is deliberately
    *outside* that comparison: re-sharding a resumed run is legal (the
    banked layout simply wins).
    """

    def __init__(
        self,
        path: str | Path,
        config: dict,
        vps_per_shard: int | None = None,
    ) -> None:
        self._path = Path(path)
        self._config = config
        #: shard-plan layout; resume adopts the banked value
        self.vps_per_shard = vps_per_shard
        #: record key -> decoded object, in banking order; keys are
        #: ("probe", (as_id, bucket)), ("vp", (as_id, vp_index)),
        #: ("analysis", as_id), ("failure", as_id),
        #: ("quarantine", (as_id, bucket))
        self._records: dict[tuple, object] = {}
        self._synced = False
        #: True once the file holds the canonical (completed) form
        self.complete = False

    @property
    def path(self) -> Path:
        return self._path

    # -- typed views ----------------------------------------------------------

    @property
    def probed(self) -> dict[tuple[int, int], "ShardProbeRecord"]:
        """Banked per-shard probe records, keyed ``(as_id, bucket)``."""
        return {
            key[1]: obj
            for key, obj in self._records.items()
            if key[0] == "probe"
        }

    @property
    def vp_probes(self) -> dict[tuple[int, int], "VpProbe"]:
        """Canonical per-VP probe facts, keyed ``(as_id, vp_index)``."""
        return {
            key[1]: obj
            for key, obj in self._records.items()
            if key[0] == "vp"
        }

    @property
    def analyses(self) -> dict[int, dict]:
        """Banked per-AS analysis summaries (opaque canonical JSON)."""
        return {
            key[1]: obj
            for key, obj in self._records.items()
            if key[0] == "analysis"
        }

    @property
    def failures(self) -> dict[int, dict]:
        """Banked per-AS analysis failures (stage + error)."""
        return {
            key[1]: obj
            for key, obj in self._records.items()
            if key[0] == "failure"
        }

    @property
    def quarantines(self) -> dict[tuple[int, int], dict]:
        """Banked per-shard quarantines, keyed ``(as_id, bucket)``."""
        return {
            key[1]: obj
            for key, obj in self._records.items()
            if key[0] == "quarantine"
        }

    # -- load -----------------------------------------------------------------

    def load(self) -> None:
        """Read banked records; missing file means a fresh start.

        Adopts the banked shard layout, salvages a torn tail exactly
        like the v3 loader, and raises
        :class:`CheckpointMismatchError` on a config mismatch.
        """
        if not self._path.exists():
            return
        with self._path.open("r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        header_line = lines[0] if lines else ""
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise ValueError(
                f"not an AReST shard checkpoint (unparseable header): "
                f"{self._path}"
            ) from None
        if (
            not isinstance(header, dict)
            or header.get("kind") != _SHARD_KIND
        ):
            raise ValueError(
                f"not an AReST shard checkpoint: {self._path}"
            )
        if header.get("config") != self._config:
            raise CheckpointMismatchError(
                f"shard checkpoint {self._path} was written by a "
                f"different campaign configuration; delete it or rerun "
                f"with the original settings"
            )
        layout = header.get("layout")
        if isinstance(layout, dict) and "vps_per_shard" in layout:
            self.vps_per_shard = int(layout["vps_per_shard"])
        self.complete = bool(header.get("complete", False))
        self._records = {}
        decoded, damaged = salvage_decode(
            lines[1:],
            _shard_record_decode,
            path=self._path,
            label="shard checkpoint",
            noun="shard record(s)",
            logger=logger,
        )
        for key, obj in decoded:
            self._records[key] = obj
        if damaged:
            self._flush()  # compact away the damaged tail
        else:
            self._synced = True

    # -- banking --------------------------------------------------------------

    def record_probe(self, record: "ShardProbeRecord") -> None:
        """Durably bank one completed shard (spill already in place)."""
        self._bank(("probe", record.key), record)

    def record_analysis(self, as_id: int, summary: dict) -> None:
        """Durably bank one AS's canonical analysis summary."""
        self._bank(("analysis", as_id), summary)

    def record_failure(self, as_id: int, stub: dict) -> None:
        """Durably bank one AS whose analysis failed deterministically."""
        self._bank(("failure", as_id), stub)

    def record_quarantine(
        self, key: tuple[int, int], detail: dict
    ) -> None:
        """Durably bank one shard past its re-dispatch budget."""
        self._bank(("quarantine", key), detail)

    def _bank(self, key: tuple, obj: object) -> None:
        replacing = self._synced and key in self._records
        self._records[key] = obj
        if self._synced and not replacing:
            append_json_line(self._path, _shard_record_encode(key, obj))
        else:
            self._flush()

    # -- canonicalization ------------------------------------------------------

    def compact_canonical(self, as_ids: list[int]) -> None:
        """Rewrite the completed checkpoint in its canonical form.

        Per-shard probe records are exploded into per-VP lines (sorted
        by ``(as_id, vp_index)``) with the bucket number and spill name
        dropped; analysis/failure lines follow each AS; quarantines (a
        degraded run only) close the file.  The layout leaves the
        header and ``complete`` enters it.  The result is the same
        byte sequence for every partitioning of the same campaign.
        """
        canonical: dict[tuple, object] = {}
        vp_facts: dict[tuple[int, int], VpProbe] = dict(self.vp_probes)
        for record in self.probed.values():
            for vp in record.vps:
                vp_facts[(record.as_id, vp.vp_index)] = vp
        analyses = self.analyses
        failures = self.failures
        for as_id in as_ids:
            for (a, vp_index) in sorted(
                k for k in vp_facts if k[0] == as_id
            ):
                canonical[("vp", (a, vp_index))] = vp_facts[(a, vp_index)]
            if as_id in analyses:
                canonical[("analysis", as_id)] = analyses[as_id]
            if as_id in failures:
                canonical[("failure", as_id)] = failures[as_id]
        for key in sorted(self.quarantines):
            canonical[("quarantine", key)] = self.quarantines[key]
        self.complete = True
        self._records = canonical
        self._flush()

    def _header(self) -> dict:
        header: dict = {
            "kind": _SHARD_KIND,
            "version": _SHARD_VERSION,
            "config": self._config,
        }
        if self.complete:
            header["complete"] = True
        elif self.vps_per_shard is not None:
            header["layout"] = {"vps_per_shard": self.vps_per_shard}
        return header

    def _flush(self) -> None:
        rewrite_json_lines(
            self._path,
            self._header(),
            (
                _shard_record_encode(key, obj)
                for key, obj in self._records.items()
            ),
        )
        self._synced = True


def _shard_record_encode(key: tuple, obj: object) -> dict:
    """One banked shard-checkpoint record as its JSONL line."""
    kind, ident = key
    if kind == "probe":
        return {"shard": list(ident), "probe": obj.as_dict()}
    if kind == "vp":
        return {"vp": list(ident), "probe": obj.as_dict()}
    if kind == "analysis":
        return {"as_id": ident, "analysis": obj}
    if kind == "failure":
        return {"as_id": ident, "failure": obj}
    if kind == "quarantine":
        return {"shard": list(ident), "quarantine": obj}
    raise ValueError(f"unknown shard record kind: {kind!r}")


def _shard_record_decode(record: dict) -> tuple[tuple, object]:
    """Inverse of :func:`_shard_record_encode` (raises on damage)."""
    from repro.campaign.shards import ShardProbeRecord, VpProbe

    if "vp" in record:
        as_id, vp_index = (int(v) for v in record["vp"])
        return ("vp", (as_id, vp_index)), VpProbe.from_dict(
            record["probe"]
        )
    if "shard" in record:
        as_id, bucket = (int(v) for v in record["shard"])
        if "quarantine" in record:
            return ("quarantine", (as_id, bucket)), dict(
                record["quarantine"]
            )
        return ("probe", (as_id, bucket)), ShardProbeRecord.from_dict(
            as_id, bucket, record["probe"]
        )
    as_id = int(record["as_id"])
    if "analysis" in record:
        return ("analysis", as_id), dict(record["analysis"])
    return ("failure", as_id), dict(record["failure"])
