"""Resilient portfolio execution: error isolation, checkpoint/resume."""

import pytest

from repro.campaign.checkpoint import CampaignCheckpoint, CheckpointMismatchError
from repro.campaign.runner import CampaignReport, CampaignRunner
from repro.netsim.faults import FaultPlan
from repro.util.retry import RetryPolicy


def _runner(**overrides) -> CampaignRunner:
    config = dict(seed=1, vps_per_as=2, targets_per_as=8)
    config.update(overrides)
    return CampaignRunner(**config)


class TestErrorIsolation:
    def test_one_failing_as_does_not_sink_the_portfolio(self):
        report = _runner().run_portfolio(as_ids=[46, 9999, 27])
        assert sorted(report) == [27, 46]
        assert set(report.failures) == {9999}
        failure = report.failures[9999]
        assert failure.stage == "setup"
        assert "no AS#9999 in portfolio" in failure.error
        assert "KeyError" in failure.error

    def test_failure_logged(self, caplog):
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            _runner().run_portfolio(as_ids=[9999])
        assert any("AS#9999 failed" in r.message for r in caplog.records)

    def test_report_is_a_mapping_over_successes(self):
        report = _runner().run_portfolio(as_ids=[46, 9999])
        assert isinstance(report, CampaignReport)
        assert len(report) == 1
        assert 46 in report
        assert report[46].as_id == 46
        assert report.results == {46: report[46]}
        with pytest.raises(KeyError):
            report[9999]

    def test_summary_mentions_failures(self):
        report = _runner().run_portfolio(as_ids=[46, 9999])
        summary = report.summary()
        assert "1 AS(es) completed" in summary
        assert "1 failed" in summary


class TestCheckpointResume:
    FAULTS = FaultPlan(probe_loss=0.05, seed=3)

    def test_resume_equals_uninterrupted(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        uninterrupted = _runner(fault_plan=self.FAULTS).run_portfolio(
            as_ids=[46, 27]
        )

        # "Crash" after the first AS: only 46 lands in the checkpoint.
        first = _runner(fault_plan=self.FAULTS).run_portfolio(
            as_ids=[46], checkpoint=path
        )
        assert sorted(first) == [46]

        resumed = _runner(fault_plan=self.FAULTS).run_portfolio(
            as_ids=[46, 27], checkpoint=path, resume=True
        )
        assert resumed.resumed_as_ids == [46]
        assert sorted(resumed) == sorted(uninterrupted)
        for as_id in uninterrupted:
            a, b = uninterrupted[as_id], resumed[as_id]
            assert a.dataset.traces == b.dataset.traces
            assert a.fingerprints == b.fingerprints
            assert a.analysis.flag_counts() == b.analysis.flag_counts()
            assert a.truth.sr_addresses == b.truth.sr_addresses
            assert a.fault_counters == b.fault_counters
            assert a.retry_accounting == b.retry_accounting
        assert (
            resumed.fault_counters.as_dict()
            == uninterrupted.fault_counters.as_dict()
        )

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint"):
            _runner().run_portfolio(as_ids=[46], resume=True)

    def test_missing_checkpoint_file_starts_fresh(self, tmp_path):
        path = tmp_path / "does-not-exist.json"
        report = _runner().run_portfolio(
            as_ids=[46], checkpoint=path, resume=True
        )
        assert sorted(report) == [46]
        assert report.resumed_as_ids == []
        assert path.exists()  # written after the fresh run

    def test_config_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        _runner(seed=1).run_portfolio(as_ids=[46], checkpoint=path)
        with pytest.raises(CheckpointMismatchError):
            _runner(seed=2).run_portfolio(
                as_ids=[46], checkpoint=path, resume=True
            )

    def test_retry_policy_is_part_of_the_signature(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        _runner().run_portfolio(as_ids=[46], checkpoint=path)
        with pytest.raises(CheckpointMismatchError):
            _runner(retry=RetryPolicy.default()).run_portfolio(
                as_ids=[46], checkpoint=path, resume=True
            )

    def test_checkpoint_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        store = CampaignCheckpoint(path, {"seed": 1})
        with pytest.raises(ValueError):
            store.load()

    def test_failed_as_is_retried_on_resume(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        partial = _runner().run_portfolio(
            as_ids=[46, 9999], checkpoint=path
        )
        assert 9999 in partial.failures
        resumed = _runner().run_portfolio(
            as_ids=[46, 9999], checkpoint=path, resume=True
        )
        # 46 restores from the bank; 9999 is attempted (and fails) again
        assert resumed.resumed_as_ids == [46]
        assert 9999 in resumed.failures
