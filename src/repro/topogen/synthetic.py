"""Piecewise synthetic portfolios: thousands-of-AS internets on demand.

The Table 5 portfolio materializes all 60 specs up front -- fine for the
paper's scale, hopeless for paper-scale *campaigns* where the shard
executor wants a 1,000+-AS internet without holding every scenario in
memory at once.  A :class:`SyntheticPortfolio` closes that gap: every
spec is a pure function of ``(seed, as_id)``, generated (and discarded)
on demand, so two workers that each need only their own shard's AS
never pay for -- or disagree about -- the rest of the internet.

Generation reuses the Table 5 machinery (role-based scenario defaults,
size tiers from the discovered-address count) so synthetic ASes exercise
the same deployment diversity as the transcribed portfolio: SR-complete
migrations, legacy LDP islands, hidden deployments, RSVP-TE legacies.
Determinism is the whole point -- ``spec(as_id)`` returns byte-identical
scenarios in every process, which is what lets shard workers rebuild
their AS independently and still merge into one canonical campaign.
"""

from __future__ import annotations

from typing import Iterator

from repro.campaign.vantage_points import VantagePoint, default_vantage_points
from repro.topogen.as_types import AsRole, Confirmation
from repro.topogen.portfolio import AsSpec, Portfolio, _base_scenario
from repro.util.determinism import unit_hash

#: synthetic ASNs start far above every reserved simulator range
_SYNTHETIC_ASN_BASE = 100_000

#: bounded spec memo (specs regenerate cheaply; memory must not grow
#: with portfolio size -- the whole point of piecewise generation)
_SPEC_CACHE_MAX = 128

#: cumulative role distribution over the synthetic internet, loosely
#: matching the Table 5 mix (stubs, content, transit, tier-1)
_ROLE_LADDER = (
    (0.20, AsRole.STUB),
    (0.45, AsRole.CONTENT),
    (0.85, AsRole.TRANSIT),
    (1.00, AsRole.TIER1),
)

#: size profiles: (min, max) discovered-address draw, which feeds the
#: Table 5 size tiers.  "small" keeps every AS in the cheapest analyzed
#: tier (benchmark-friendly); "paper" spreads across all tiers.
_PROFILES = {
    "small": (100, 900),
    "paper": (100, 250_000),
}


def _draw_confirmation(seed: int, as_id: int) -> Confirmation:
    draw = unit_hash("synth-confirm", seed, as_id)
    if draw < 0.40:
        return Confirmation.CISCO
    if draw < 0.55:
        return Confirmation.SURVEY
    return Confirmation.NONE


def _draw_role(seed: int, as_id: int) -> AsRole:
    draw = unit_hash("synth-role", seed, as_id)
    for ceiling, role in _ROLE_LADDER:
        if draw < ceiling:
            return role
    return AsRole.TIER1  # pragma: no cover - ladder ends at 1.0


class SyntheticPortfolio(Portfolio):
    """A lazily-generated ``n_ases``-AS portfolio.

    Duck-compatible with :class:`~repro.topogen.portfolio.Portfolio`
    (``spec``/``analyzed``/iteration), but **nothing is materialized**
    until asked for: iteration generates specs one at a time and
    ``spec(as_id)`` computes just that AS (with a small LRU so the
    campaign's repeated lookups stay cheap).  Every AS is analyzed by
    construction -- the synthetic internet has no below-threshold rows
    to exclude.
    """

    def __init__(
        self, n_ases: int, seed: int = 0, profile: str = "small"
    ) -> None:
        if n_ases < 1:
            raise ValueError("n_ases must be >= 1")
        if profile not in _PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; expected one of "
                f"{sorted(_PROFILES)}"
            )
        # deliberately NOT calling super().__init__: the base class
        # would force materializing every spec up front
        self.n_ases = n_ases
        self.seed = seed
        self.profile = profile
        # plain dict, not lru_cache: the portfolio must stay picklable
        # (it ships to shard workers inside the spawn config)
        self._spec_cache: dict[int, AsSpec] = {}

    def __len__(self) -> int:
        return self.n_ases

    def __iter__(self) -> Iterator[AsSpec]:
        for as_id in range(1, self.n_ases + 1):
            yield self.spec(as_id)

    def spec(self, as_id: int) -> AsSpec:
        """Generate (or recall) one AS, a pure function of (seed, id)."""
        if not 1 <= as_id <= self.n_ases:
            raise KeyError(
                f"no AS#{as_id} in {self.n_ases}-AS synthetic portfolio"
            )
        spec = self._spec_cache.get(as_id)
        if spec is None:
            if len(self._spec_cache) >= _SPEC_CACHE_MAX:
                self._spec_cache.pop(next(iter(self._spec_cache)))
            spec = self._build_spec(as_id)
            self._spec_cache[as_id] = spec
        return spec

    def _build_spec(self, as_id: int) -> AsSpec:
        lo, hi = _PROFILES[self.profile]
        ips = lo + int(unit_hash("synth-ips", self.seed, as_id) * (hi - lo))
        role = _draw_role(self.seed, as_id)
        confirmation = _draw_confirmation(self.seed, as_id)
        scenario = _base_scenario(as_id, role, confirmation, ips)
        return AsSpec(
            as_id=as_id,
            asn=_SYNTHETIC_ASN_BASE + as_id,
            name=f"synth-{as_id}",
            role=role,
            traces_sent=0,
            ips_discovered=ips,
            confirmation=confirmation,
            scenario=scenario,
        )

    # -- Portfolio views, without materialization where possible -----------

    def analyzed(self) -> list[AsSpec]:
        return list(self)

    def excluded(self) -> list[AsSpec]:
        return []

    def confirmed(self) -> list[AsSpec]:
        return [s for s in self if s.confirmation.confirmed]

    def by_role(self, role: AsRole) -> list[AsSpec]:
        return [s for s in self if s.role is role]

    def as_dict(self) -> dict:
        """Config-signature view: what shapes every generated spec."""
        return {
            "kind": "synthetic",
            "n_ases": self.n_ases,
            "seed": self.seed,
            "profile": self.profile,
        }


def synthetic_vantage_points(count: int) -> tuple[VantagePoint, ...]:
    """A VP fleet of arbitrary size: Table 4 first, clones after.

    The paper's 50 VMs come first verbatim; fleets beyond 50 extend
    with deterministic clones (same providers, numbered sites) so
    paper-scale campaigns can probe from as many vantage points as the
    scenario demands.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    base = default_vantage_points()
    if count <= len(base):
        return base[:count]
    fleet = list(base)
    for i in range(len(base), count):
        template = base[i % len(base)]
        fleet.append(
            VantagePoint(
                vp_id=f"vp{i + 1:03d}",
                provider=template.provider,
                provider_asn=template.provider_asn,
                city=f"{template.city} #{i // len(base) + 1}",
                country=template.country,
            )
        )
    return tuple(fleet)
