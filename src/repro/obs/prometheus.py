"""Prometheus textfile export of campaign telemetry.

Renders a :class:`~repro.obs.summary.TelemetrySummary` in the exposition
format the node_exporter textfile collector (and any Prometheus scrape)
understands.  A telemetry-enabled campaign writes this as
``metrics.prom`` at finalize; ``arest telemetry <dir> --prometheus``
re-renders it from the JSONL stream on demand.

Metric families:

- ``arest_stage_seconds_total{scope,stage}`` -- wall-clock seconds per
  scope (AS id or ``portfolio``) and pipeline stage;
- ``arest_events_total{scope,name}`` -- every typed counter;
- ``arest_traces_quarantined`` -- the sanitizer's campaign-wide
  quarantine total (the headline data-quality signal, promoted out of
  the generic counter family so it can be alerted on by name);
- ``arest_fault_events_total{class}`` -- injected measurement-plane
  faults by class (probe loss, rate limiting, blackouts, ...);
- ``arest_epoch_transitions_total{scope}`` /
  ``arest_stale_walk_fallbacks_total{scope}`` -- the churn-safety
  surface: topology epochs crossed and cached probes refused for
  staleness (both 0 on a static network);
- ``arest_gauge{scope,name}`` -- every other observational gauge
  (walk-cache behaviour, churn-event tallies);
- ``arest_run_duration_seconds`` -- total campaign wall clock;
- ``arest_run_info{...} 1`` -- provenance labels (version, seed, jobs,
  exit status), the conventional info-metric idiom.

Paper-scale runs add the shard-execution families rendered by
:func:`render_scale_metrics`: shard plan/steal/re-dispatch tallies
(``arest_shards_*``), lease lifecycle (``arest_leases_*``), worker
lifecycle (``arest_workers_*``), and the memory-governance surface
(``arest_rss_peak_bytes``).
"""

from __future__ import annotations

from repro.obs.summary import TelemetrySummary
from repro.obs.trace import LATENCY_BUCKETS


def _escape(value: object) -> str:
    """Escape a label value per the exposition format.

    The text format gives label values exactly three escapes --
    backslash, double-quote and newline -- and backslash must be
    rewritten first or it would re-escape the escapes themselves.
    """
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


#: public alias: every exposition surface must escape through this
escape_label_value = _escape


def render_ingest_metrics(
    *,
    accepted_total: int,
    rejected: "dict[str, int]",
    queue_depth: int,
    queue_capacity: int,
    traces_quarantined: int,
    draining: bool = False,
) -> str:
    """Render the streaming service's live ingest families.

    ``GET /metrics`` serves this (optionally after the batch families
    rendered from the telemetry directory).  Reason labels pass through
    :func:`escape_label_value` like every other label value.
    """
    lines = [
        "# HELP arest_ingest_accepted_total Traces durably accepted "
        "(202) by the ingest endpoint.",
        "# TYPE arest_ingest_accepted_total counter",
        f"arest_ingest_accepted_total {accepted_total}",
        "# HELP arest_ingest_rejected_total Traces refused by the "
        "ingest endpoint, by reason.",
        "# TYPE arest_ingest_rejected_total counter",
    ]
    for reason in sorted(rejected):
        lines.append(
            f'arest_ingest_rejected_total{{reason="{_escape(reason)}"}} '
            f"{rejected[reason]}"
        )
    lines += [
        "# HELP arest_queue_depth Traces currently waiting in the "
        "bounded ingest queue.",
        "# TYPE arest_queue_depth gauge",
        f"arest_queue_depth {queue_depth}",
        "# HELP arest_queue_capacity Configured bound of the ingest "
        "queue.",
        "# TYPE arest_queue_capacity gauge",
        f"arest_queue_capacity {queue_capacity}",
        "# HELP arest_service_draining 1 while the service refuses new "
        "traces pending shutdown.",
        "# TYPE arest_service_draining gauge",
        f"arest_service_draining {int(draining)}",
        "# HELP arest_traces_quarantined Traces withheld from analysis "
        "(sanitizer quarantine + poison containment).",
        "# TYPE arest_traces_quarantined gauge",
        f"arest_traces_quarantined {traces_quarantined}",
    ]
    return "\n".join(lines) + "\n"


def render_latency_histograms(histograms: "dict[str, dict]") -> str:
    """Render per-stage latency histograms as one Prometheus family.

    ``histograms`` maps stage -> ``{"buckets": [...], "sum", "count"}``
    with per-bucket (non-cumulative) counts over the fixed
    :data:`~repro.obs.trace.LATENCY_BUCKETS` edges; the exposition
    format wants cumulative ``le`` buckets, so the cumulation happens
    here.  Both the textfile export and the live service ``/metrics``
    render through this one function, so the two surfaces can never
    drift.
    """
    if not histograms:
        return ""
    lines = [
        "# HELP arest_stage_latency_seconds Per-event latency by "
        "pipeline stage (fixed deterministic buckets).",
        "# TYPE arest_stage_latency_seconds histogram",
    ]
    for stage in sorted(histograms):
        hist = histograms[stage]
        buckets = list(hist.get("buckets", ()))
        if len(buckets) != len(LATENCY_BUCKETS) + 1:
            continue  # foreign layout: refuse to render garbage
        label = _escape(stage)
        cumulative = 0
        for edge, count in zip(LATENCY_BUCKETS, buckets):
            cumulative += count
            lines.append(
                f'arest_stage_latency_seconds_bucket{{stage="{label}",'
                f'le="{edge:g}"}} {cumulative}'
            )
        cumulative += buckets[-1]
        lines.append(
            f'arest_stage_latency_seconds_bucket{{stage="{label}",'
            f'le="+Inf"}} {cumulative}'
        )
        lines.append(
            f'arest_stage_latency_seconds_sum{{stage="{label}"}} '
            f"{float(hist.get('sum', 0.0)):.6f}"
        )
        lines.append(
            f'arest_stage_latency_seconds_count{{stage="{label}"}} '
            f"{int(hist.get('count', 0))}"
        )
    return "\n".join(lines) + "\n"


#: scale-execution stat -> (metric name, type, help text); stats whose
#: key is absent from a run simply don't render (e.g. rss budget off)
_SCALE_FAMILIES = (
    (
        "shards_total",
        "arest_shards_total",
        "gauge",
        "Shards in the campaign's deterministic plan.",
    ),
    (
        "shards_probed",
        "arest_shards_probed_total",
        "counter",
        "Shards probed by this run (not restored from checkpoint).",
    ),
    (
        "shards_resumed",
        "arest_shards_resumed_total",
        "counter",
        "Shards restored from the checkpoint instead of re-probed.",
    ),
    (
        "shards_redispatched",
        "arest_shards_redispatched_total",
        "counter",
        "Shards re-queued after a worker crash or lease expiry.",
    ),
    (
        "shards_quarantined",
        "arest_shards_quarantined_total",
        "counter",
        "Shards circuit-broken past their re-dispatch budget.",
    ),
    (
        "leases_granted",
        "arest_leases_granted_total",
        "counter",
        "Shard leases granted to workers.",
    ),
    (
        "leases_renewed",
        "arest_leases_renewed_total",
        "counter",
        "Lease renewals (worker heartbeats received).",
    ),
    (
        "leases_expired",
        "arest_leases_expired_total",
        "counter",
        "Leases expired on silent workers (presumed lost, re-queued).",
    ),
    (
        "workers_spawned",
        "arest_workers_spawned_total",
        "counter",
        "Worker processes started (initial pool + replacements).",
    ),
    (
        "workers_crashed",
        "arest_workers_crashed_total",
        "counter",
        "Worker processes that died without delivering a result.",
    ),
    (
        "workers_recycled",
        "arest_workers_recycled_total",
        "counter",
        "Workers gracefully replaced on RSS-watchdog request.",
    ),
    (
        "ases_analyzed",
        "arest_ases_analyzed_total",
        "counter",
        "ASes whose analysis summary was banked.",
    ),
    (
        "traces_total",
        "arest_scale_traces_total",
        "counter",
        "Traces collected across all completed ASes.",
    ),
    (
        "rss_peak_bytes",
        "arest_rss_peak_bytes",
        "gauge",
        "Supervisor peak resident set size in bytes.",
    ),
    (
        "wall_seconds",
        "arest_scale_wall_seconds",
        "gauge",
        "Paper-scale campaign wall clock in seconds.",
    ),
)


def render_scale_metrics(stats: dict) -> str:
    """Render a paper-scale run's shard/lease/RSS execution families.

    ``stats`` is :attr:`repro.campaign.scale.ScaleCampaign.stats` --
    observational tallies only; nothing here feeds back into results.
    """
    lines: list[str] = []
    for key, metric, kind, help_text in _SCALE_FAMILIES:
        if key not in stats:
            continue
        value = stats[key]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines += [
            f"# HELP {metric} {help_text}",
            f"# TYPE {metric} {kind}",
            f"{metric} {rendered}",
        ]
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(summary: TelemetrySummary) -> str:
    """Render the summary in Prometheus exposition format."""
    lines: list[str] = []
    manifest = summary.manifest
    if manifest is not None:
        env = manifest.get("environment", {})
        labels = ",".join(
            f'{k}="{_escape(v)}"'
            for k, v in (
                ("command", manifest.get("command")),
                ("seed", manifest.get("seed")),
                ("jobs", manifest.get("jobs")),
                ("exit_status", manifest.get("exit_status")),
                ("package_version", env.get("package_version")),
                ("python_version", env.get("python_version")),
            )
        )
        lines += [
            "# HELP arest_run_info Campaign run provenance.",
            "# TYPE arest_run_info gauge",
            f"arest_run_info{{{labels}}} 1",
        ]
        duration = manifest.get("duration_seconds")
        if duration is not None:
            lines += [
                "# HELP arest_run_duration_seconds Campaign wall clock.",
                "# TYPE arest_run_duration_seconds gauge",
                f"arest_run_duration_seconds {duration:.6f}",
            ]
    if summary.stage_seconds:
        lines += [
            "# HELP arest_stage_seconds_total Wall-clock seconds per "
            "scope and stage.",
            "# TYPE arest_stage_seconds_total counter",
        ]
        for scope in sorted(summary.stage_seconds, key=str):
            for stage, seconds in sorted(
                summary.stage_seconds[scope].items()
            ):
                lines.append(
                    f'arest_stage_seconds_total{{scope="{_escape(scope)}",'
                    f'stage="{_escape(stage)}"}} {seconds:.6f}'
                )
    if summary.counters:
        lines += [
            "# HELP arest_events_total Typed event counters per scope.",
            "# TYPE arest_events_total counter",
        ]
        for scope in sorted(summary.counters, key=str):
            for name, value in sorted(summary.counters[scope].items()):
                lines.append(
                    f'arest_events_total{{scope="{_escape(scope)}",'
                    f'name="{_escape(name)}"}} {value}'
                )
        lines += [
            "# HELP arest_traces_quarantined Traces the sanitizer "
            "withheld from analysis.",
            "# TYPE arest_traces_quarantined gauge",
            "arest_traces_quarantined "
            f"{summary.totals.get('traces_quarantined', 0)}",
        ]
        fault_totals = {
            name[len("fault_"):]: value
            for name, value in summary.totals.items()
            if name.startswith("fault_")
        }
        if fault_totals:
            lines += [
                "# HELP arest_fault_events_total Injected "
                "measurement-plane faults by class.",
                "# TYPE arest_fault_events_total counter",
            ]
            for name, value in sorted(fault_totals.items()):
                lines.append(
                    f'arest_fault_events_total{{class="{_escape(name)}"}} '
                    f"{value}"
                )
    if summary.gauges:
        for gauge_name, metric, help_text in (
            (
                "walkcache_epoch_transitions",
                "arest_epoch_transitions_total",
                "Topology epochs the forwarding engine crossed.",
            ),
            (
                "walkcache_stale_walk_fallbacks",
                "arest_stale_walk_fallbacks_total",
                "Cached probes refused for staleness and re-walked live.",
            ),
        ):
            scoped = {
                scope: per[gauge_name]
                for scope, per in summary.gauges.items()
                if gauge_name in per
            }
            if scoped:
                lines += [
                    f"# HELP {metric} {help_text}",
                    f"# TYPE {metric} counter",
                ]
                for scope in sorted(scoped, key=str):
                    lines.append(
                        f'{metric}{{scope="{_escape(scope)}"}} '
                        f"{int(scoped[scope])}"
                    )
        lines += [
            "# HELP arest_gauge Last-written observational gauges "
            "per scope.",
            "# TYPE arest_gauge gauge",
        ]
        for scope in sorted(summary.gauges, key=str):
            for name, value in sorted(summary.gauges[scope].items()):
                lines.append(
                    f'arest_gauge{{scope="{_escape(scope)}",'
                    f'name="{_escape(name)}"}} {value:g}'
                )
    if summary.histograms:
        lines.append(
            render_latency_histograms(summary.histograms).rstrip("\n")
        )
    return "\n".join(lines) + "\n"
