"""Plain-text table rendering for benchmark and report output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Floats are shown with 3 decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        """Render one cell."""
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        """Render one aligned row."""
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
