"""Hardware vendor profiles.

Encodes Table 1 of the paper (default Segment Routing Global/Local Blocks)
together with the fingerprinting-relevant behaviour of each vendor:

- the *initial TTL signature*, i.e. the pair of initial TTL values the
  router operating system uses for ICMP ``time-exceeded`` and ICMP
  ``echo-reply`` messages.  Vanaubel et al. showed this pair partitions
  routers into classes; crucially, Cisco and Huawei share the signature
  ``<255, 255>`` and therefore cannot be told apart by TTL fingerprinting
  alone (Sec. 5 of the paper);
- the *dynamic label pool*, from which LDP labels and (for Juniper)
  adjacency SIDs are allocated;
- whether the public SNMPv3 fingerprint dataset covers the vendor (Arista
  is notably absent, Sec. 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping


class Vendor(enum.Enum):
    """Router hardware vendors observed in the paper's survey (Fig. 5a)."""

    CISCO = "Cisco"
    JUNIPER = "Juniper"
    HUAWEI = "Huawei"
    NOKIA = "Nokia"
    ARISTA = "Arista"
    MIKROTIK = "MikroTik"
    LINUX = "Linux"
    UNKNOWN = "Unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class LabelRange:
    """A half-open-free inclusive MPLS label range ``[low, high]``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high < 2**20:
            raise ValueError(f"invalid label range [{self.low}, {self.high}]")

    def __contains__(self, label: int) -> bool:
        return self.low <= label <= self.high

    def size(self) -> int:
        """Number of labels in the range."""
        return self.high - self.low + 1

    def overlaps(self, other: "LabelRange") -> bool:
        """True when the ranges share any label."""
        return self.low <= other.high and other.low <= self.high

    def intersection(self, other: "LabelRange") -> "LabelRange | None":
        """The overlapping sub-range, or None."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return LabelRange(low, high)

    def __str__(self) -> str:
        return f"[{self.low}; {self.high}]"


@dataclass(frozen=True, slots=True)
class TTLSignature:
    """Initial TTL pair ``<time-exceeded, echo-reply>``."""

    time_exceeded: int
    echo_reply: int

    def __post_init__(self) -> None:
        for ttl in (self.time_exceeded, self.echo_reply):
            if ttl not in (30, 32, 60, 64, 128, 255):
                raise ValueError(f"implausible initial TTL: {ttl}")

    def __str__(self) -> str:
        return f"<{self.time_exceeded}, {self.echo_reply}>"


@dataclass(frozen=True, slots=True)
class VendorProfile:
    """Everything the simulator and AReST need to know about a vendor."""

    vendor: Vendor
    #: Default SRGB, if the vendor ships one (Table 1).  ``None`` means the
    #: operator must configure the range explicitly (e.g. Juniper requires
    #: user-defined SRGBs on most platforms).
    default_srgb: LabelRange | None
    #: Default SRLB, if any.  Juniper allocates adjacency SIDs from the
    #: dynamic label pool instead of a dedicated SRLB (Sec. 2.3).
    default_srlb: LabelRange | None
    #: Pool from which LDP labels (and Juniper adjacency SIDs) are drawn.
    dynamic_pool: LabelRange
    #: Initial-TTL fingerprint signature.
    ttl_signature: TTLSignature
    #: Whether the public SNMPv3 dataset can identify this vendor.
    snmp_identifiable: bool


#: Default vendor label ranges, verbatim from Table 1 of the paper, plus
#: dynamic pools from vendor documentation (Cisco dynamic labels start at
#: 24,000 and span roughly a million values; Juniper at 299,776; Huawei
#: above its SRGB).
VENDOR_PROFILES: Mapping[Vendor, VendorProfile] = {
    Vendor.CISCO: VendorProfile(
        vendor=Vendor.CISCO,
        default_srgb=LabelRange(16_000, 23_999),
        default_srlb=LabelRange(15_000, 15_999),
        dynamic_pool=LabelRange(24_000, 1_048_575),
        ttl_signature=TTLSignature(255, 255),
        snmp_identifiable=True,
    ),
    Vendor.HUAWEI: VendorProfile(
        vendor=Vendor.HUAWEI,
        default_srgb=LabelRange(16_000, 47_999),
        default_srlb=LabelRange(48_000, 63_999),
        dynamic_pool=LabelRange(64_000, 1_048_575),
        ttl_signature=TTLSignature(255, 255),
        snmp_identifiable=True,
    ),
    Vendor.ARISTA: VendorProfile(
        vendor=Vendor.ARISTA,
        default_srgb=LabelRange(900_000, 965_535),
        default_srlb=LabelRange(100_000, 116_383),
        dynamic_pool=LabelRange(130_000, 899_999),
        ttl_signature=TTLSignature(64, 64),
        snmp_identifiable=False,  # absent from the SNMPv3 dataset (Sec. 5)
    ),
    Vendor.JUNIPER: VendorProfile(
        vendor=Vendor.JUNIPER,
        default_srgb=None,  # user-defined; no SRLB either (Sec. 2.3)
        default_srlb=None,
        dynamic_pool=LabelRange(299_776, 1_048_575),
        ttl_signature=TTLSignature(255, 64),
        snmp_identifiable=True,
    ),
    Vendor.NOKIA: VendorProfile(
        vendor=Vendor.NOKIA,
        default_srgb=None,  # SR-OS requires an explicit SRGB block
        default_srlb=None,
        dynamic_pool=LabelRange(524_288, 1_048_575),
        ttl_signature=TTLSignature(64, 255),
        snmp_identifiable=True,
    ),
    Vendor.MIKROTIK: VendorProfile(
        vendor=Vendor.MIKROTIK,
        default_srgb=None,
        default_srlb=None,
        dynamic_pool=LabelRange(16, 1_048_575),
        ttl_signature=TTLSignature(64, 64),
        snmp_identifiable=True,
    ),
    Vendor.LINUX: VendorProfile(
        vendor=Vendor.LINUX,
        default_srgb=None,
        default_srlb=None,
        dynamic_pool=LabelRange(16, 1_048_575),
        ttl_signature=TTLSignature(64, 64),
        snmp_identifiable=True,
    ),
}


def profile(vendor: Vendor) -> VendorProfile:
    """Look up the profile for ``vendor``.

    Raises :class:`KeyError` for :attr:`Vendor.UNKNOWN`, which has no
    profile by construction.
    """
    return VENDOR_PROFILES[vendor]


def ttl_signature_class(signature: TTLSignature) -> frozenset[Vendor]:
    """Vendors sharing an initial-TTL signature.

    TTL fingerprinting can only narrow a router down to the *class* of
    vendors sharing the signature.  The paper leans on the fact that
    ``<255, 255>`` maps to {Cisco, Huawei}, whose SR ranges intersect in
    ``[16,000; 23,999]``.
    """
    return frozenset(
        v for v, p in VENDOR_PROFILES.items() if p.ttl_signature == signature
    )


#: The label range AReST may use when TTL fingerprinting yields the
#: {Cisco, Huawei} class: the intersection of both vendors' default SRGBs
#: (Sec. 5 of the paper).
CISCO_HUAWEI_SRGB_INTERSECTION = LabelRange(16_000, 23_999)
