"""Tests for the longitudinal adoption tracker (future-work study)."""

import pytest

from repro.analysis.longitudinal import (
    REFERENCE_YEAR,
    AdoptionTracker,
    adoption_year,
    re_detect_adoption,
    scenario_in_year,
)
from repro.topogen.portfolio import default_portfolio


@pytest.fixture(scope="module")
def portfolio():
    return default_portfolio()


class TestAdoptionYear:
    def test_within_window(self, portfolio):
        for spec in portfolio:
            year = adoption_year(spec, first_year=2018)
            assert 2018 <= year <= REFERENCE_YEAR

    def test_deterministic(self, portfolio):
        spec = portfolio.spec(46)
        assert adoption_year(spec, 2018, seed=3) == adoption_year(
            spec, 2018, seed=3
        )

    def test_confirmed_adopt_earlier_on_average(self, portfolio):
        confirmed = [
            adoption_year(s, 2018)
            for s in portfolio
            if s.confirmation.confirmed
        ]
        unconfirmed = [
            adoption_year(s, 2018)
            for s in portfolio
            if not s.confirmation.confirmed
        ]
        assert sum(confirmed) / len(confirmed) < sum(unconfirmed) / len(
            unconfirmed
        )


class TestScenarioEvolution:
    def test_pre_adoption_is_ldp(self, portfolio):
        spec = portfolio.spec(46)
        start = adoption_year(spec, 2018)
        early = scenario_in_year(spec, start - 1, 2018)
        assert not early.deploys_sr
        assert early.mpls  # the network exists, it just runs LDP

    def test_reference_year_matches_portfolio(self, portfolio):
        for as_id in (46, 15, 27):
            spec = portfolio.spec(as_id)
            evolved = scenario_in_year(spec, REFERENCE_YEAR, 2018)
            assert evolved.deploys_sr == spec.scenario.deploys_sr
            assert evolved.sr_share == spec.scenario.sr_share

    def test_never_adopters_stay_ldp(self, portfolio):
        spec = portfolio.spec(7)  # Proximus never deploys SR
        for year in (2018, 2022, REFERENCE_YEAR):
            assert not scenario_in_year(spec, year, 2018).deploys_sr

    def test_ramp_monotone(self, portfolio):
        spec = portfolio.spec(15)
        shares = [
            scenario_in_year(spec, year, 2018).sr_share
            for year in range(2018, REFERENCE_YEAR + 1)
        ]
        assert shares == sorted(shares)


class TestTracker:
    def test_adoption_curve_monotone_overall(self):
        tracker = AdoptionTracker(
            first_year=2019,
            last_year=2025,
            as_ids=[15, 27, 46, 7, 31],
            seed=1,
            targets_per_as=8,
            vps_per_as=2,
        )
        snapshots = tracker.run()
        assert [s.year for s in snapshots] == list(range(2019, 2026))
        # detection grows from the early to the late window
        early = sum(s.ases_with_sr_evidence for s in snapshots[:2])
        late = sum(s.ases_with_sr_evidence for s in snapshots[-2:])
        assert late > early
        # never-adopters keep the curve below 100% in every year
        assert all(
            s.ases_with_sr_evidence < s.ases_analyzed for s in snapshots
        )

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AdoptionTracker(first_year=2025, last_year=2020)


class TestReDetection:
    """Fast re-detection over archived JSONL datasets."""

    def archive(self, tmp_path, name, asn, labeled):
        from repro.campaign.dataset import TraceDataset

        from tests.conftest import make_hop, make_trace

        traces = []
        for k in range(6):
            if labeled:
                hops = [
                    make_hop(1, f"10.3.{k}.1", labels=(16001,)),
                    make_hop(2, f"10.3.{k}.2", labels=(16001,)),
                ]
            else:
                hops = [
                    make_hop(1, f"10.3.{k}.1"),
                    make_hop(2, f"10.3.{k}.2"),
                ]
            hops = [h.with_annotation(truth_asn=asn) for h in hops]
            traces.append(make_trace(hops))
        path = tmp_path / name
        TraceDataset(target_asn=asn, traces=traces).dump_jsonl(path)
        return path

    def test_curve_from_archives(self, tmp_path):
        archives = {
            2020: [
                self.archive(tmp_path, "a2020.jsonl", 65001, labeled=False)
            ],
            2024: [
                self.archive(tmp_path, "a2024.jsonl", 65001, labeled=True),
                self.archive(tmp_path, "b2024.jsonl", 65002, labeled=False),
            ],
        }
        snapshots = re_detect_adoption(archives, chunk=4)
        assert [s.year for s in snapshots] == [2020, 2024]
        first, second = snapshots
        assert first.datasets == 1
        assert first.traces == 6
        assert first.ases_with_sr_evidence == 0
        assert first.detection_share == 0.0
        assert second.datasets == 2
        assert second.traces == 12
        assert second.ases_analyzed == 2
        # the 16001 x 16001 run raises CO (strong) for AS65001 only
        assert second.ases_with_sr_evidence == 1
        assert second.detection_share == 0.5

    def test_mask_respects_target_asn(self, tmp_path):
        # labels live on hops owned by a DIFFERENT AS than the archive
        # target: the ownership mask must suppress the evidence
        from repro.campaign.dataset import TraceDataset

        from tests.conftest import make_hop, make_trace

        hops = [
            make_hop(1, "10.4.0.1", labels=(16001,)).with_annotation(
                truth_asn=64999
            ),
            make_hop(2, "10.4.0.2", labels=(16001,)).with_annotation(
                truth_asn=64999
            ),
        ]
        path = tmp_path / "foreign.jsonl"
        TraceDataset(target_asn=65001, traces=[make_trace(hops)]).dump_jsonl(
            path
        )
        snapshots = re_detect_adoption({2024: [path]})
        assert snapshots[0].ases_with_sr_evidence == 0
