"""bdrmapIT-style router ownership annotation (Marder et al., IMC 2018).

The real bdrmapIT infers which AS owns each observed interface from
traceroute graphs, BGP origins, and alias sets.  Over the simulator the
inference target is known exactly, so the annotator exposes a
ground-truth mapping with a configurable, deterministic error rate that
models bdrmapIT's residual misattributions at AS boundaries (inter-AS
links are numbered out of one side's space, which is exactly where the
real tool errs too).
"""

from __future__ import annotations

from repro.netsim.addressing import IPv4Address
from repro.netsim.topology import Network
from repro.probing.records import TraceHop
from repro.util.determinism import unit_hash


class BdrmapIt:
    """Interface-to-AS annotation over one simulated network."""

    def __init__(
        self,
        network: Network,
        error_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        self._network = network
        self._error_rate = error_rate
        self._seed = seed
        self._cache: dict[IPv4Address, int | None] = {}

    def asn_of_address(self, address: IPv4Address) -> int | None:
        """The AS this interface is attributed to (possibly wrongly)."""
        if address in self._cache:
            return self._cache[address]
        owner = self._network.owner_of(address)
        asn: int | None
        if owner is None:
            asn = None
        else:
            asn = self._network.router(owner).asn
            if (
                self._error_rate > 0.0
                and unit_hash(self._seed, "bdrmap-err", address.value)
                < self._error_rate
            ):
                asn = self._neighbor_asn(owner, asn)
        self._cache[address] = asn
        return asn

    def _neighbor_asn(self, router_id: int, own_asn: int) -> int:
        """Misattribute to an adjacent AS, bdrmapIT's realistic failure
        mode (falls back to the true AS when the router has no foreign
        neighbour)."""
        for neighbor in self._network.neighbors(router_id):
            neighbor_asn = self._network.router(neighbor).asn
            if neighbor_asn != own_asn:
                return neighbor_asn
        return own_asn

    def asn_of_hop(self, hop: TraceHop) -> int | None:
        """Adapter usable as the pipeline's ``asn_of`` callable."""
        if hop.address is None:
            return None
        return self.asn_of_address(hop.address)
