"""End-to-end HTTP tests against an in-process service instance.

Real sockets, real request bytes: each test boots an
:class:`~repro.service.server.ArestService` on an ephemeral port,
talks to it with a tiny asyncio HTTP client, and drives the lifecycle
explicitly (no signals -- the subprocess tests cover those).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import replace

import pytest

from repro.service.server import ArestService, ServiceConfig
from repro.service.state import batch_aggregate
from repro.service.wire import trace_to_json
from tests.service.conftest import corpus


def _lines(traces) -> str:
    return "\n".join(json.dumps(trace_to_json(t)) for t in traces)


async def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: str = "",
    headers: dict | None = None,
):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = body.encode("utf-8")
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, data = raw.partition(b"\r\n\r\n")
    status_line, *header_lines = head.decode("latin-1").split("\r\n")
    status = int(status_line.split(" ")[1])
    parsed = {}
    for line in header_lines:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, data


class _Service:
    """Async context manager: a running service on an ephemeral port."""

    def __init__(self, tmp_path, **overrides):
        defaults = dict(
            state_dir=tmp_path / "state", port=0, detect_timeout=None
        )
        defaults.update(overrides)
        self.config = ServiceConfig(**defaults)
        self.service = ArestService(self.config)

    async def __aenter__(self):
        self.host, self.port = await self.service.start()
        return self

    async def __aexit__(self, *exc):
        if not self.service._stop.is_set():
            self.service.request_drain()
        await self.service.serve_until_shutdown()

    async def request(self, method, path, body="", headers=None):
        return await _request(
            self.host, self.port, method, path, body, headers
        )


class TestRoutes:
    def test_segments_match_the_batch_pipeline(self, tmp_path):
        traces = corpus(6)

        async def run():
            async with _Service(tmp_path) as svc:
                status, _, body = await svc.request(
                    "POST", "/trace", _lines(traces)
                )
                assert status == 202
                acked = json.loads(body)
                assert acked["accepted"] == len(traces)
                await svc.service.queue.join()
                status, headers, body = await svc.request(
                    "GET", "/segments"
                )
                assert status == 200
                assert headers["content-type"] == "application/json"
                return body

        served = asyncio.run(run())
        assert served == batch_aggregate(traces).segments_json()

    def test_single_object_body(self, tmp_path):
        trace = corpus(1)[0]

        async def run():
            async with _Service(tmp_path) as svc:
                status, _, body = await svc.request(
                    "POST", "/trace", json.dumps(trace_to_json(trace))
                )
                assert status == 202
                assert json.loads(body)["accepted"] == 1

        asyncio.run(run())

    def test_malformed_only_body_is_a_400(self, tmp_path):
        async def run():
            async with _Service(tmp_path) as svc:
                status, _, body = await svc.request(
                    "POST", "/trace", "not json\n[]\n"
                )
                assert status == 400
                doc = json.loads(body)
                assert len(doc["rejected"]) == 2
                # the refusals are visible on /metrics
                _, _, metrics = await svc.request("GET", "/metrics")
                text = metrics.decode()
                assert (
                    'arest_ingest_rejected_total{reason="bad-json"} 1'
                    in text
                )
                assert (
                    'arest_ingest_rejected_total{reason="not-a-trace"} 1'
                    in text
                )

        asyncio.run(run())

    def test_mixed_body_accepts_the_good_lines(self, tmp_path):
        traces = corpus(2)
        body = f"{_lines(traces[:1])}\ngarbage\n{_lines(traces[1:])}"

        async def run():
            async with _Service(tmp_path) as svc:
                status, _, payload = await svc.request(
                    "POST", "/trace", body
                )
                assert status == 202
                doc = json.loads(payload)
                assert doc["accepted"] == 2
                assert len(doc["rejected"]) == 1

        asyncio.run(run())

    def test_report_and_healthz_and_unknowns(self, tmp_path):
        async def run():
            async with _Service(tmp_path) as svc:
                status, _, body = await svc.request("GET", "/healthz")
                assert status == 200
                assert json.loads(body)["status"] == "ok"
                status, _, body = await svc.request("GET", "/report")
                assert status == 200
                doc = json.loads(body)
                assert doc["kind"] == "arest-report"
                assert doc["service"]["queue"]["capacity"] == 1024
                status, _, _ = await svc.request("GET", "/nope")
                assert status == 404
                status, _, _ = await svc.request("PUT", "/segments")
                assert status == 405
                status, _, _ = await svc.request("GET", "/trace")
                assert status == 405

        asyncio.run(run())


class TestBackpressure:
    def test_bound_holds_and_every_202_trace_lands(self, tmp_path):
        """The backpressure satellite: 429s + Retry-After, no loss."""
        traces = corpus(12)

        async def run():
            async with _Service(
                tmp_path,
                queue_capacity=4,
                low_watermark=0,
                fair_share=4,
            ) as svc:
                # freeze consumption so depth actually builds
                await svc.service.pool.stop()
                accepted: list = []
                saw_429 = False
                for i in range(0, len(traces), 2):
                    batch = traces[i : i + 2]
                    status, headers, _ = await svc.request(
                        "POST", "/trace", _lines(batch)
                    )
                    if status == 202:
                        accepted.extend(batch)
                    else:
                        saw_429 = True
                        assert status == 429
                        assert int(headers["retry-after"]) >= 1
                    assert svc.service.queue.depth <= 4
                assert saw_429
                assert svc.service.queue.peak_depth <= 4

                # resume workers: every acknowledged trace must land
                svc.service.pool.start()
                await svc.service.queue.join()
                _, _, body = await svc.request("GET", "/segments")
                return accepted, body

        accepted, body = asyncio.run(run())
        assert 0 < len(accepted) < len(traces)
        assert body == batch_aggregate(accepted).segments_json()

    def test_submitter_quota_is_per_submitter(self, tmp_path):
        traces = corpus(6)

        async def run():
            async with _Service(
                tmp_path,
                queue_capacity=8,
                low_watermark=0,
                fair_share=2,
            ) as svc:
                await svc.service.pool.stop()
                status, _, _ = await svc.request(
                    "POST",
                    "/trace",
                    _lines(traces[:2]),
                    headers={"X-AReST-Submitter": "firehose"},
                )
                assert status == 202
                status, _, body = await svc.request(
                    "POST",
                    "/trace",
                    _lines(traces[2:4]),
                    headers={"X-AReST-Submitter": "firehose"},
                )
                assert status == 429
                assert (
                    json.loads(body)["reason"] == "submitter-quota"
                )
                status, _, _ = await svc.request(
                    "POST",
                    "/trace",
                    _lines(traces[4:6]),
                    headers={"X-AReST-Submitter": "polite"},
                )
                assert status == 202
                svc.service.pool.start()
                await svc.service.queue.join()

        asyncio.run(run())


class TestPoisonContainment:
    def test_poison_exception_never_kills_a_worker(
        self, tmp_path, monkeypatch
    ):
        import repro.service.workers as workers_mod

        traces = corpus(4)
        real = workers_mod.analyze_trace

        def explosive(trace, **kwargs):
            if trace.flow_id == 666:
                raise RuntimeError("crafted poison")
            return real(trace, **kwargs)

        monkeypatch.setattr(workers_mod, "analyze_trace", explosive)
        poison = replace(traces[1], flow_id=666)
        stream = [traces[0], poison, traces[2], traces[3]]

        async def run():
            async with _Service(tmp_path) as svc:
                status, _, _ = await svc.request(
                    "POST", "/trace", _lines(stream)
                )
                assert status == 202
                await svc.service.queue.join()
                assert svc.service.pool.poisoned == 1
                _, _, body = await svc.request("GET", "/segments")
                return body

        body = asyncio.run(run())
        doc = json.loads(body)
        assert doc["traces"]["collected"] == 4
        assert doc["traces"]["quarantined"] >= 1
        assert doc["anomalies"]["poison-trace"] == 1
        assert (
            doc["traces"]["analyzed"] + doc["traces"]["quarantined"]
            == doc["traces"]["collected"]
        )

    def test_hung_analysis_hits_the_deadline(
        self, tmp_path, monkeypatch
    ):
        import repro.service.workers as workers_mod

        traces = corpus(2)
        real = workers_mod.analyze_trace

        def hang(trace, **kwargs):
            if trace.flow_id == 666:
                time.sleep(5)
            return real(trace, **kwargs)

        monkeypatch.setattr(workers_mod, "analyze_trace", hang)
        stream = [replace(traces[0], flow_id=666), traces[1]]

        async def run():
            async with _Service(
                tmp_path, detect_timeout=0.2
            ) as svc:
                status, _, _ = await svc.request(
                    "POST", "/trace", _lines(stream)
                )
                assert status == 202
                await asyncio.wait_for(
                    svc.service.queue.join(), timeout=10
                )
                assert svc.service.pool.timeouts == 1
                # the worker survived: the good trace was analyzed
                _, _, body = await svc.request("GET", "/segments")
                doc = json.loads(body)
                assert doc["traces"]["collected"] == 2
                assert doc["anomalies"]["poison-trace"] == 1

        asyncio.run(run())


class TestDrain:
    def test_draining_refuses_with_503_and_checkpoints(self, tmp_path):
        traces = corpus(3)

        async def run():
            async with _Service(tmp_path) as svc:
                status, _, _ = await svc.request(
                    "POST", "/trace", _lines(traces)
                )
                assert status == 202
                svc.service.queue.start_draining()
                status, _, body = await svc.request(
                    "POST", "/trace", _lines(traces)
                )
                assert status == 503
                assert json.loads(body)["reason"] == "draining"
                status, _, _ = await svc.request("GET", "/healthz")
                assert status == 503
                svc.service.request_drain()
                outcome = await svc.service.serve_until_shutdown()
                assert outcome == "ok"
                # exiting the context manager double-drains: fine
                svc.service._stop.set()

        asyncio.run(run())
        # the final checkpoint covered everything: snapshot on disk,
        # journal reduced to its header
        snapshot = json.loads(
            (tmp_path / "state" / "snapshot.json").read_text()
        )
        assert snapshot["seq"] == 3
        journal = (tmp_path / "state" / "ingest.jsonl").read_text()
        assert len(journal.splitlines()) == 1

    def test_drain_span_lands_in_metrics_before_shutdown(self, tmp_path):
        async def run():
            async with _Service(tmp_path) as svc:
                _, _, metrics = await svc.request("GET", "/metrics")
                text = metrics.decode()
                assert "arest_queue_capacity 1024" in text
                assert (
                    'arest_stage_seconds_total{scope="service",'
                    'stage="recover"}' in text
                )

        asyncio.run(run())


class TestTelemetrySession:
    def test_session_records_counters_spans_and_status(self, tmp_path):
        traces = corpus(4)
        telemetry_dir = tmp_path / "telem"

        async def run():
            async with _Service(
                tmp_path, telemetry_dir=telemetry_dir
            ) as svc:
                await svc.request("POST", "/trace", _lines(traces))
                await svc.request("POST", "/trace", "garbage")
                await svc.service.queue.join()

        asyncio.run(run())
        manifest = json.loads(
            (telemetry_dir / "manifest.json").read_text()
        )
        assert manifest["exit_status"] == "ok"
        assert manifest["command"] == "serve"
        events = [
            json.loads(line)
            for line in (telemetry_dir / "telemetry.jsonl")
            .read_text()
            .splitlines()
        ]
        service_events = [
            e for e in events if e.get("scope") == "service"
        ]
        assert service_events
        stages = {
            e["stage"] for e in service_events if e["kind"] == "span"
        }
        assert "drain" in stages
        counters = {
            e["name"]: e["value"]
            for e in service_events
            if e["kind"] == "counter"
        }
        assert counters["ingest_accepted"] == 4
        assert counters["ingest_rejected_bad-json"] == 1
        metrics = (telemetry_dir / "metrics.prom").read_text()
        assert 'stage="drain"' in metrics

    def test_results_identical_with_and_without_telemetry(self, tmp_path):
        traces = corpus(5)

        async def run(telemetry_dir):
            async with _Service(
                tmp_path / ("with" if telemetry_dir else "without"),
                telemetry_dir=telemetry_dir,
            ) as svc:
                await svc.request("POST", "/trace", _lines(traces))
                await svc.service.queue.join()
                _, _, body = await svc.request("GET", "/segments")
                return body

        with_telemetry = asyncio.run(run(tmp_path / "telem"))
        without = asyncio.run(run(None))
        assert with_telemetry == without


class TestDiskFull:
    """A full journal volume refuses (503 + reason), never acknowledges."""

    def test_full_journal_volume_refuses_with_503(
        self, tmp_path, monkeypatch
    ):
        import errno

        from repro.service.state import ServiceState
        from repro.util.atomicio import DiskFullError

        traces = corpus(2)

        async def run():
            async with _Service(tmp_path) as svc:
                status, _, _ = await svc.request(
                    "POST", "/trace", _lines(traces)
                )
                assert status == 202

                def full(self, batch):
                    raise DiskFullError(
                        tmp_path / "state" / "ingest.jsonl",
                        OSError(errno.ENOSPC, "No space left on device"),
                    )

                monkeypatch.setattr(ServiceState, "accept", full)
                status, headers, body = await svc.request(
                    "POST", "/trace", _lines(traces)
                )
                assert status == 503
                doc = json.loads(body)
                assert doc["reason"] == "disk-full"
                assert "no space left" in doc["detail"].lower()
                assert "retry-after" in headers
                monkeypatch.undo()
                # space freed up: the retried batch is accepted whole
                status, _, _ = await svc.request(
                    "POST", "/trace", _lines(traces)
                )
                assert status == 202
                _, _, metrics = await svc.request("GET", "/metrics")
                assert (
                    'arest_ingest_rejected_total{reason="disk-full"} 2'
                    in metrics.decode()
                )

        asyncio.run(run())
