"""Trace sanitization: structural validation, repair and quarantine.

Every trace passes through a :class:`TraceSanitizer` before detection.
The checks mirror what a careful measurement pipeline can verify without
ground truth:

- **field ranges** -- quoted labels fit 20 bits, TC fits 3 bits,
  LSE-TTLs and reply IP TTLs fit 8 bits (a reply TTL of 0 or > 255 is
  physically impossible);
- **bottom-of-stack structure** -- a quoted stack sets the S-bit exactly
  once, on its last entry (RFC 3032);
- **martian sources** -- replies sourced from reserved address space
  (0/8, 127/8, 224/4, 240/4) cannot come from an on-path router;
- **destination quoted stacks** -- a port-unreachable/echo reply from
  the destination never carries an RFC 4950 extension;
- **probe-TTL order** -- recorded hops are non-decreasing in probe TTL
  (TNT-revealed hops legitimately share their anchor's TTL);
- **duplicates** -- the same probe TTL answered twice: byte-identical
  records are deduplicated, *conflicting* records are unresolvable;
- **epoch changes** -- on churned campaigns (``repro.netsim.dynamics``)
  traces whose hops span more than one topology epoch are quarantined
  (``cross-epoch``; plus ``vanished-responder`` when a responder went
  dark mid-trace): each hop is individually well-formed, but the
  sequence stitches two control-plane states together, and a label
  window spanning the seam can fabricate evidence no single network
  state exhibited.

Under :attr:`SanitizePolicy.LENIENT` (the default) every repairable
anomaly is fixed in place and recorded as a :class:`TraceAnomaly`;
traces with unresolvable anomalies -- or more repairs than the budget
allows -- are *quarantined* (``SanitizeResult.trace is None``) rather
than silently dropped.  :attr:`SanitizePolicy.STRICT` raises
:class:`TraceSanitizationError` on the first anomaly instead.

A well-formed trace sanitizes to the *same object* with no anomalies,
so the default-on sanitizer leaves clean campaigns byte-identical
(property-tested in ``tests/test_sanitize_properties.py``).

One anomaly kind is recorded *about* a trace rather than found in it:
:attr:`AnomalyKind.POISON_TRACE` marks a trace whose detection stage
failed outright (exception or per-request timeout).  The streaming
service (:mod:`repro.service`) quarantines such traces through this
same structured-anomaly path, so a poison input is counted and
reported exactly like a structurally-corrupt one instead of killing
the worker that was analyzing it.

What sanitization deliberately does **not** attempt: removing
stale-label replay.  In uniform-mode SR tunnels adjacent hops genuinely
quote identical ``[label, ttl=1]`` stacks -- that *is* the CVR/CO
signal -- so a replayed stack is observationally indistinguishable from
real evidence and any filter would destroy true detections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.netsim.addressing import IPv4Address
from repro.probing.records import QuotedLse, Trace, TraceHop

_MAX_LABEL = 2**20 - 1
_MAX_TC = 7
_MAX_TTL = 255

#: (base, mask) pairs of source ranges no on-path router can own
_MARTIAN_RANGES = (
    (0x00000000, 0xFF000000),  # 0.0.0.0/8        "this network"
    (0x7F000000, 0xFF000000),  # 127.0.0.0/8      loopback
    (0xE0000000, 0xF0000000),  # 224.0.0.0/4      multicast
    (0xF0000000, 0xF0000000),  # 240.0.0.0/4      reserved
)


def is_martian(address: IPv4Address) -> bool:
    """True when no on-path router could legitimately own ``address``."""
    return any(
        address.value & mask == base for base, mask in _MARTIAN_RANGES
    )


class SanitizePolicy(enum.Enum):
    """What to do when a trace fails validation."""

    #: raise :class:`TraceSanitizationError` on the first anomaly
    STRICT = "strict"
    #: repair what is safely repairable, quarantine the rest
    LENIENT = "lenient"


class AnomalyKind(enum.Enum):
    """Structural defect classes a trace can exhibit."""

    LSE_FIELD_RANGE = "lse-field-range"
    REPLY_TTL_RANGE = "reply-ttl-range"
    BAD_BOTTOM_OF_STACK = "bad-bottom-of-stack"
    MARTIAN_SOURCE = "martian-source"
    DESTINATION_QUOTED_STACK = "destination-quoted-stack"
    NON_MONOTONIC_TTL = "non-monotonic-ttl"
    DUPLICATE_HOP = "duplicate-hop"
    CONFLICTING_HOPS = "conflicting-hops"
    TRAILING_HOPS = "trailing-hops"
    REACHED_MISMATCH = "reached-mismatch"
    REPAIR_BUDGET_EXCEEDED = "repair-budget-exceeded"
    #: the topology mutated while the trace was being probed (the hops
    #: were observed under more than one forwarding epoch)
    CROSS_EPOCH = "cross-epoch"
    #: a cross-epoch trace where a responder went dark mid-trace: some
    #: hop answered, then everything after it timed out and the
    #: destination was never reached -- the classic signature of a path
    #: element withdrawn between probes
    VANISHED_RESPONDER = "vanished-responder"
    #: the trace made the detection stage itself fail (an exception or
    #: a per-request timeout in the streaming service): the trace is
    #: quarantined through the normal anomaly path instead of killing
    #: the worker that was analyzing it
    POISON_TRACE = "poison-trace"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class TraceAnomaly:
    """One structured record of a defect found (and possibly repaired)."""

    kind: AnomalyKind
    vp: str
    destination: str
    flow_id: int
    probe_ttl: int | None
    detail: str
    repaired: bool

    def as_dict(self) -> dict:
        """JSON-friendly view (reports, checkpoint metadata)."""
        return {
            "kind": self.kind.value,
            "vp": self.vp,
            "destination": self.destination,
            "flow_id": self.flow_id,
            "probe_ttl": self.probe_ttl,
            "detail": self.detail,
            "repaired": self.repaired,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TraceAnomaly":
        """Inverse of :meth:`as_dict`."""
        return cls(
            kind=AnomalyKind(record["kind"]),
            vp=record["vp"],
            destination=record["destination"],
            flow_id=int(record["flow_id"]),
            probe_ttl=(
                int(record["probe_ttl"])
                if record.get("probe_ttl") is not None
                else None
            ),
            detail=record.get("detail", ""),
            repaired=bool(record["repaired"]),
        )


class TraceSanitizationError(ValueError):
    """Strict-policy failure: the offending anomaly rides along."""

    def __init__(self, anomaly: TraceAnomaly) -> None:
        super().__init__(
            f"trace {anomaly.vp} -> {anomaly.destination}: "
            f"{anomaly.kind.value} ({anomaly.detail})"
        )
        self.anomaly = anomaly


@dataclass(slots=True)
class SanitizeResult:
    """Outcome of sanitizing one trace."""

    #: the (possibly repaired) trace, or None when quarantined
    trace: Trace | None
    anomalies: list[TraceAnomaly] = field(default_factory=list)

    @property
    def quarantined(self) -> bool:
        """True when the trace was withheld from analysis."""
        return self.trace is None


class TraceSanitizer:
    """Validates, repairs and quarantines traces before detection."""

    def __init__(
        self,
        policy: SanitizePolicy = SanitizePolicy.LENIENT,
        max_repairs_per_trace: int = 8,
    ) -> None:
        if max_repairs_per_trace < 1:
            raise ValueError("max_repairs_per_trace must be >= 1")
        self._policy = policy
        self._max_repairs = max_repairs_per_trace

    @property
    def policy(self) -> SanitizePolicy:
        """The active strictness policy."""
        return self._policy

    def sanitize(self, trace: Trace) -> SanitizeResult:
        """Validate one trace; identity on well-formed input."""
        anomalies: list[TraceAnomaly] = []
        hops = list(trace.hops)
        changed = False

        for i, hop in enumerate(hops):
            fixed = self._sanitize_hop(trace, hop, anomalies)
            if fixed is not hop:
                hops[i] = fixed
                changed = True

        ttls = [h.probe_ttl for h in hops]
        if any(b < a for a, b in zip(ttls, ttls[1:])):
            self._note(
                anomalies,
                trace,
                AnomalyKind.NON_MONOTONIC_TTL,
                None,
                "probe TTLs decrease; restored by stable sort",
            )
            hops.sort(key=lambda h: h.probe_ttl)
            changed = True

        deduped, conflict = self._dedupe(trace, hops, anomalies)
        if conflict:
            return SanitizeResult(trace=None, anomalies=anomalies)
        if len(deduped) != len(hops):
            changed = True
        hops = deduped

        hops, truncated = self._truncate_after_destination(
            trace, hops, anomalies
        )
        changed = changed or truncated

        reached = any(h.destination_reply for h in hops)
        if reached != trace.reached:
            self._note(
                anomalies,
                trace,
                AnomalyKind.REACHED_MISMATCH,
                None,
                f"reached={trace.reached} but destination replies "
                f"say {reached}",
            )
            changed = True

        if trace.crosses_epochs and trace.epoch_span is not None:
            # environmental, not structural: the topology changed under
            # the trace.  Each hop is individually well-formed, but the
            # *sequence* stitches two control-plane states together --
            # a consecutive-label window spanning the boundary can pair
            # an SR run with a pre-change RSVP/LDP hop and fabricate
            # evidence no single network state ever exhibited.  Not
            # repairable (the seam is unknowable without truth), so the
            # trace is quarantined.
            lo, hi = trace.epoch_span
            self._note(
                anomalies,
                trace,
                AnomalyKind.CROSS_EPOCH,
                None,
                f"hops observed under topology epochs {lo}..{hi}",
                repaired=False,
            )
            vanished_ttl = self._vanished_responder(hops, reached)
            if vanished_ttl is not None:
                self._note(
                    anomalies,
                    trace,
                    AnomalyKind.VANISHED_RESPONDER,
                    vanished_ttl,
                    "responder went dark mid-trace across an epoch "
                    "change (trailing stars, destination unreached)",
                    repaired=False,
                )
            return SanitizeResult(trace=None, anomalies=anomalies)

        if not anomalies:
            return SanitizeResult(trace=trace)

        repairs = sum(1 for a in anomalies if a.repaired)
        if repairs > self._max_repairs:
            self._note(
                anomalies,
                trace,
                AnomalyKind.REPAIR_BUDGET_EXCEEDED,
                None,
                f"{repairs} repairs exceed the budget of "
                f"{self._max_repairs}",
                repaired=False,
            )
            return SanitizeResult(trace=None, anomalies=anomalies)

        sanitized = trace
        if changed:
            sanitized = trace.with_hops(tuple(hops))
        if reached != trace.reached:
            sanitized = Trace(
                vp=sanitized.vp,
                vp_router_id=sanitized.vp_router_id,
                destination=sanitized.destination,
                flow_id=sanitized.flow_id,
                hops=sanitized.hops,
                reached=reached,
                epoch_span=sanitized.epoch_span,
            )
        return SanitizeResult(trace=sanitized, anomalies=anomalies)

    # -- per-hop checks ----------------------------------------------------------

    def _sanitize_hop(
        self,
        trace: Trace,
        hop: TraceHop,
        anomalies: list[TraceAnomaly],
    ) -> TraceHop:
        if hop.reply_ip_ttl is not None and not (
            1 <= hop.reply_ip_ttl <= _MAX_TTL
        ):
            self._note(
                anomalies,
                trace,
                AnomalyKind.REPLY_TTL_RANGE,
                hop.probe_ttl,
                f"reply IP TTL {hop.reply_ip_ttl} impossible; cleared",
            )
            hop = hop.with_annotation(reply_ip_ttl=None)
        if hop.lses:
            hop = self._sanitize_stack(trace, hop, anomalies)
        if hop.address is not None and is_martian(hop.address):
            self._note(
                anomalies,
                trace,
                AnomalyKind.MARTIAN_SOURCE,
                hop.probe_ttl,
                f"reply sourced from martian {hop.address}; "
                f"hop blanked to unresponsive",
            )
            hop = hop.with_annotation(
                address=None,
                rtt_ms=None,
                reply_ip_ttl=None,
                lses=None,
                destination_reply=False,
            )
        if hop.destination_reply and hop.lses:
            self._note(
                anomalies,
                trace,
                AnomalyKind.DESTINATION_QUOTED_STACK,
                hop.probe_ttl,
                "destination reply quotes a label stack; stack stripped",
            )
            hop = hop.with_annotation(lses=None)
        return hop

    def _sanitize_stack(
        self,
        trace: Trace,
        hop: TraceHop,
        anomalies: list[TraceAnomaly],
    ) -> TraceHop:
        assert hop.lses is not None
        for entry in hop.lses:
            if not (
                0 <= entry.label <= _MAX_LABEL
                and 0 <= entry.tc <= _MAX_TC
                and 0 <= entry.ttl <= _MAX_TTL
            ):
                self._note(
                    anomalies,
                    trace,
                    AnomalyKind.LSE_FIELD_RANGE,
                    hop.probe_ttl,
                    f"LSE fields out of range ({entry.label}, "
                    f"{entry.tc}, {entry.ttl}); stack stripped",
                )
                return hop.with_annotation(lses=None)
        expected = tuple(
            i == len(hop.lses) - 1 for i in range(len(hop.lses))
        )
        actual = tuple(e.bottom_of_stack for e in hop.lses)
        if actual != expected:
            self._note(
                anomalies,
                trace,
                AnomalyKind.BAD_BOTTOM_OF_STACK,
                hop.probe_ttl,
                "bottom-of-stack bit not set exactly once on the last "
                "entry; flags rebuilt",
            )
            return hop.with_annotation(
                lses=tuple(
                    QuotedLse(
                        label=e.label,
                        tc=e.tc,
                        bottom_of_stack=bottom,
                        ttl=e.ttl,
                    )
                    for e, bottom in zip(hop.lses, expected)
                )
            )
        return hop

    # -- cross-hop checks --------------------------------------------------------

    def _dedupe(
        self,
        trace: Trace,
        hops: list[TraceHop],
        anomalies: list[TraceAnomaly],
    ) -> tuple[list[TraceHop], bool]:
        """Collapse identical duplicate probe TTLs; flag conflicts.

        TNT-revealed hops share their anchor's probe TTL by design and
        are exempt.  Two *different* answers for the same probe TTL are
        unresolvable without ground truth: the trace is quarantined.
        """
        out: list[TraceHop] = []
        last_real: TraceHop | None = None
        for hop in hops:
            if (
                not hop.tnt_revealed
                and last_real is not None
                and hop.probe_ttl == last_real.probe_ttl
            ):
                if hop == last_real:
                    self._note(
                        anomalies,
                        trace,
                        AnomalyKind.DUPLICATE_HOP,
                        hop.probe_ttl,
                        "identical duplicate record dropped",
                    )
                    continue
                self._note(
                    anomalies,
                    trace,
                    AnomalyKind.CONFLICTING_HOPS,
                    hop.probe_ttl,
                    "two different answers for one probe TTL; "
                    "trace quarantined",
                    repaired=False,
                )
                return out, True
            out.append(hop)
            if not hop.tnt_revealed:
                last_real = hop
        return out, False

    @staticmethod
    def _vanished_responder(
        hops: list[TraceHop], reached: bool
    ) -> int | None:
        """Probe TTL of the first trailing star after a responder.

        Only meaningful on cross-epoch traces: a run of unanswered
        probes at the tail of an unreached trace, directly after a hop
        that *did* answer, marks where a path element vanished between
        probes.  Returns None when the pattern is absent.
        """
        if reached or not hops or hops[-1].responded:
            return None
        idx = len(hops) - 1
        while idx >= 0 and not hops[idx].responded:
            idx -= 1
        if idx < 0:
            return None
        return hops[idx + 1].probe_ttl

    def _truncate_after_destination(
        self,
        trace: Trace,
        hops: list[TraceHop],
        anomalies: list[TraceAnomaly],
    ) -> tuple[list[TraceHop], bool]:
        first = next(
            (i for i, h in enumerate(hops) if h.destination_reply), None
        )
        if first is None or first == len(hops) - 1:
            return hops, False
        self._note(
            anomalies,
            trace,
            AnomalyKind.TRAILING_HOPS,
            hops[first].probe_ttl,
            f"{len(hops) - first - 1} hop(s) recorded after the "
            f"destination reply; truncated",
        )
        return hops[: first + 1], True

    # -- bookkeeping -------------------------------------------------------------

    def _note(
        self,
        anomalies: list[TraceAnomaly],
        trace: Trace,
        kind: AnomalyKind,
        probe_ttl: int | None,
        detail: str,
        repaired: bool = True,
    ) -> None:
        anomaly = TraceAnomaly(
            kind=kind,
            vp=trace.vp,
            destination=str(trace.destination),
            flow_id=trace.flow_id,
            probe_ttl=probe_ttl,
            detail=detail,
            repaired=repaired,
        )
        if self._policy is SanitizePolicy.STRICT:
            raise TraceSanitizationError(anomaly)
        anomalies.append(anomaly)
