"""Tests for RFC 6790 entropy-label handling in detection."""

from repro.core.detector import ArestDetector, effective_labels
from repro.core.flags import Flag
from repro.netsim.mpls import ReservedLabel
from repro.netsim.tunnels import TunnelPolicy
from repro.probing.tnt import TntProber

from tests.conftest import TARGET_ASN, ChainNetwork, make_hop, make_trace

ELI = int(ReservedLabel.ENTROPY_LABEL_INDICATOR)


class TestEffectiveLabels:
    def test_plain_stack_unchanged(self):
        hop = make_hop(1, "10.0.0.1", labels=(16_005, 992_000))
        assert effective_labels(hop) == (16_005, 992_000)

    def test_entropy_pair_stripped(self):
        hop = make_hop(1, "10.0.0.1", labels=(16_005, ELI, 900_001))
        assert effective_labels(hop) == (16_005,)

    def test_bare_entropy_tail_empty(self):
        hop = make_hop(1, "10.0.0.1", labels=(ELI, 900_001))
        assert effective_labels(hop) == ()

    def test_multiple_pairs(self):
        hop = make_hop(
            1, "10.0.0.1", labels=(16_005, ELI, 900_001, 15_100)
        )
        assert effective_labels(hop) == (16_005, 15_100)

    def test_unlabeled_hop(self):
        assert effective_labels(make_hop(1, "10.0.0.1")) == ()

    def test_trailing_eli_without_value(self):
        hop = make_hop(1, "10.0.0.1", labels=(16_005, ELI))
        assert effective_labels(hop) == (16_005,)


class TestEntropyAwareDetection:
    def test_bare_entropy_tail_not_lso(self):
        """[ELI, EL] is depth 2 on the wire but carries no SR signal --
        flagging it would be a false positive by construction."""
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(ELI, 900_001))]
        )
        assert ArestDetector().detect(trace, {}) == []

    def test_transport_plus_entropy_is_not_lso(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(777_000, ELI, 900_001))]
        )
        # effective depth 1, label outside vendor ranges: silent
        assert ArestDetector().detect(trace, {}) == []

    def test_run_survives_entropy_noise(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005, ELI, 900_001)),
                make_hop(2, "10.0.0.2", labels=(17_005, ELI, 900_002)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        assert [s.flag for s in segments] == [Flag.CO]
        assert segments[0].stack_depths == (1, 1)  # effective depths

    def test_end_to_end_entropy_tunnel(self):
        chain = ChainNetwork(
            length=6,
            policy=TunnelPolicy(asn=TARGET_ASN, entropy_share=1.0),
        )
        trace = TntProber(chain.engine, seed=1).trace(
            chain.vp.router_id, chain.target
        )
        segments = ArestDetector().detect(trace, {})
        # one CO run over the transport label; the [ELI, EL] tail and
        # the pairs inside the run never produce extra flags
        assert [s.flag for s in segments] == [Flag.CO]
        # the wire stacks really were deep (the confounder existed)
        assert any(h.stack_depth >= 3 for h in trace.labeled_hops())


class TestEntropyForwarding:
    def test_delivery_with_entropy_pairs(self):
        chain = ChainNetwork(
            length=6,
            policy=TunnelPolicy(asn=TARGET_ASN, entropy_share=1.0),
        )
        from repro.netsim.forwarding import ReplyKind

        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 64
        )
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_truth_planes_mark_entropy(self):
        chain = ChainNetwork(
            length=6,
            policy=TunnelPolicy(asn=TARGET_ASN, entropy_share=1.0),
        )
        truth = chain.engine.truth_walk(chain.vp.router_id, chain.target)
        labeled = [t for t in truth if t.received_labels]
        assert any("entropy" in t.received_planes for t in labeled)


class TestReservedLabelHandling:
    def test_explicit_null_tops_never_form_runs(self):
        """UHP with explicit-null: every hop quotes label 0 on top.
        Consecutive zeros must not masquerade as a CO run."""
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(0, 16_005)),
                make_hop(2, "10.0.0.2", labels=(0, 16_005)),
                make_hop(3, "10.0.0.3", labels=(0, 16_005)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        # the *inner* 16,005 labels still sequence correctly
        assert [s.flag for s in segments] == [Flag.CO]
        assert segments[0].top_labels == (16_005, 16_005, 16_005)
        assert segments[0].stack_depths == (1, 1, 1)

    def test_bare_explicit_null_is_silent(self):
        trace = make_trace([make_hop(1, "10.0.0.1", labels=(0,))])
        assert ArestDetector().detect(trace, {}) == []

    def test_router_alert_stripped(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(1, 700_001, 700_002))]
        )
        segments = ArestDetector().detect(trace, {})
        assert [s.flag for s in segments] == [Flag.LSO]
        assert segments[0].stack_depths == (2,)

    def test_effective_labels_strip_reserved(self):
        hop = make_hop(1, "10.0.0.1", labels=(0, 14, 16_005))
        assert effective_labels(hop) == (16_005,)
