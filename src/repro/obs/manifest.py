"""Run manifests: who ran what, where, and how it ended.

Every telemetry-enabled campaign writes a ``manifest.json`` next to its
event stream -- the provenance record a reader needs before trusting
any number in the telemetry: the exact configuration signature (the
same dict the checkpoint embeds), the seed, package and Python
versions, host information, wall-clock start/end, and the exit status.

The manifest is written *twice* through
:func:`~repro.util.atomicio.atomic_write_text`:

- at campaign start with ``exit_status: "running"`` -- so a run that
  dies without cleanup is self-describing (a manifest still saying
  ``running`` after the process is gone means a crash or SIGKILL);
- at campaign end via :meth:`RunManifest.finalize` with the real
  outcome (``ok``, ``error``, ``interrupted``) and the end timestamp.

Both writes are atomic whole-file replacements, so a reader always
sees a complete, parseable manifest.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.atomicio import atomic_write_text
from repro.version import __version__

#: canonical manifest filename inside a telemetry directory
MANIFEST_FILENAME = "manifest.json"

_KIND = "arest-manifest"
# v2: adds the optional trace_id (the campaign-wide distributed-trace
# id) and clock_anchor (the supervisor's wall/monotonic correspondence,
# the cross-process skew reference).  Additive only; v1 readers keep
# working because load_manifest never gates on the version.
_VERSION = 2


def _environment() -> dict:
    """Host / interpreter / package provenance."""
    return {
        "package": "repro",
        "package_version": __version__,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "hostname": platform.node(),
        "argv": list(sys.argv),
    }


@dataclass(slots=True)
class RunManifest:
    """One campaign run's provenance record (see module docstring)."""

    path: Path
    config: dict
    seed: int
    command: str
    jobs: int = 1
    as_ids: list[int] = field(default_factory=list)
    environment: dict = field(default_factory=_environment)
    started_unix: float = 0.0
    finished_unix: float | None = None
    exit_status: str = "running"
    #: campaign-wide distributed-trace id (None when tracing is off)
    trace_id: str | None = None
    #: supervisor clock anchor: {"unix": ..., "clock": ...}
    clock_anchor: dict | None = None

    def as_dict(self) -> dict:
        """JSON view, exactly what lands in ``manifest.json``."""
        return {
            "kind": _KIND,
            "version": _VERSION,
            "command": self.command,
            "config": self.config,
            "seed": self.seed,
            "jobs": self.jobs,
            "as_ids": list(self.as_ids),
            "environment": dict(self.environment),
            "trace_id": self.trace_id,
            "clock_anchor": (
                None
                if self.clock_anchor is None
                else dict(self.clock_anchor)
            ),
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "duration_seconds": (
                None
                if self.finished_unix is None
                else self.finished_unix - self.started_unix
            ),
            "exit_status": self.exit_status,
        }

    def write(self) -> None:
        """Atomically (re)write ``manifest.json``."""
        atomic_write_text(
            self.path, json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"
        )

    def finalize(self, exit_status: str, clock=time.time) -> None:
        """Record the outcome and end time, and rewrite the manifest."""
        self.exit_status = exit_status
        self.finished_unix = clock()
        self.write()


def begin_manifest(
    directory: str | Path,
    *,
    config: dict,
    seed: int,
    command: str,
    jobs: int = 1,
    as_ids: list[int] | None = None,
    clock=time.time,
    trace_id: str | None = None,
    clock_anchor: dict | None = None,
) -> RunManifest:
    """Create and durably write a ``running`` manifest in ``directory``."""
    manifest = RunManifest(
        path=Path(directory) / MANIFEST_FILENAME,
        config=config,
        seed=seed,
        command=command,
        jobs=jobs,
        as_ids=list(as_ids or ()),
        started_unix=clock(),
        trace_id=trace_id,
        clock_anchor=clock_anchor,
    )
    manifest.write()
    return manifest


def load_manifest(directory: str | Path) -> dict | None:
    """Read a telemetry directory's manifest, or None when absent."""
    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("kind") != _KIND:
        raise ValueError(f"{path} is not an AReST run manifest")
    return record
