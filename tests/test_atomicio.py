"""Crash-safety of the atomic write helpers.

The headline guarantee: a ``kill -9`` delivered at ANY instant during
an artifact write leaves either the complete old file or the complete
new file -- never a torn, truncated or unparsable one.  The crash
injection test hammers exactly that: a child process rewrites a JSON
file in a tight loop while the parent SIGKILLs it at random points.
"""

import errno
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.util.atomicio import (
    DiskFullError,
    atomic_write_text,
    atomic_writer,
    durable_append,
    is_disk_full,
)


class TestAtomicWriter:
    def test_writes_new_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, '{"v": 1}\n')
        assert json.loads(path.read_text()) == {"v": 1}

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["a.json"]

    def test_exception_leaves_old_file_and_no_litter(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("half a new fi")
                raise RuntimeError("boom")
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_durable_append(self, tmp_path):
        path = tmp_path / "log.jsonl"
        durable_append(path, "one\n")
        durable_append(path, "two\n")
        assert path.read_text() == "one\ntwo\n"


_CRASH_LOOP = """
import json, sys
from repro.util.atomicio import atomic_write_text

path = sys.argv[1]
payload = "x" * 4096  # big enough that a torn write would be visible
i = 0
print("ready", flush=True)
while True:
    i += 1
    atomic_write_text(path, json.dumps({"gen": i, "fill": payload}) + "\\n")
"""


class TestKillNineInjection:
    """SIGKILL mid-write never yields a truncated or unparsable file."""

    @pytest.mark.parametrize("delay_ms", [2, 5, 11, 23, 47])
    def test_file_always_parses_after_sigkill(self, tmp_path, delay_ms):
        path = tmp_path / "artifact.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CRASH_LOOP, str(path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            time.sleep(delay_ms / 1000)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()
        # The file either does not exist yet (killed before the first
        # rename) or holds one complete, parseable generation.
        if path.exists():
            record = json.loads(path.read_text())
            assert record["gen"] >= 1
            assert record["fill"] == "x" * 4096
        # No half-written temporary may be mistaken for the artifact;
        # stale .tmp litter is allowed (the writer died), but it must
        # be clearly named as such.
        for leftover in tmp_path.iterdir():
            assert leftover.name == "artifact.json" or leftover.name.endswith(
                ".tmp"
            )


def _enospc(*_args, **_kwargs):
    raise OSError(errno.ENOSPC, "No space left on device")


class TestDiskFullClassification:
    """ENOSPC/EDQUOT surface as DiskFullError; other OSErrors do not."""

    def test_is_disk_full_predicate(self):
        assert is_disk_full(OSError(errno.ENOSPC, "full"))
        if hasattr(errno, "EDQUOT"):
            assert is_disk_full(OSError(errno.EDQUOT, "quota"))
        assert not is_disk_full(OSError(errno.EACCES, "denied"))
        assert not is_disk_full(RuntimeError("full"))

    def test_atomic_writer_classifies_enospc(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.json"
        path.write_text("old")
        monkeypatch.setattr("repro.util.atomicio.os.fsync", _enospc)
        with pytest.raises(DiskFullError) as info:
            atomic_write_text(path, "new")
        assert info.value.errno == errno.ENOSPC
        assert info.value.path == path
        # the previous artifact survives and no temporary is left over
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_atomic_writer_classifies_enospc_raised_mid_body(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("old")
        with pytest.raises(DiskFullError):
            with atomic_writer(path) as fh:
                fh.write("half a new fi")
                raise OSError(errno.ENOSPC, "No space left on device")
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_atomic_writer_leaves_other_oserrors_alone(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("old")
        with pytest.raises(OSError) as info:
            with atomic_writer(path) as fh:
                fh.write("x")
                raise OSError(errno.EACCES, "denied")
        assert not isinstance(info.value, DiskFullError)
        assert path.read_text() == "old"

    def test_durable_append_classifies_enospc(self, tmp_path, monkeypatch):
        path = tmp_path / "log.jsonl"
        durable_append(path, "one\n")
        monkeypatch.setattr("repro.util.atomicio.os.fsync", _enospc)
        with pytest.raises(DiskFullError) as info:
            durable_append(path, "two\n")
        assert info.value.errno == errno.ENOSPC
        assert info.value.path == path
        # the previously fsynced line is still there
        assert path.read_text().startswith("one\n")


class TestDiskFullCheckpoint:
    """ENOSPC mid-checkpoint keeps the banked prefix resumable."""

    def _store(self, path):
        from repro.campaign.checkpoint import ShardCheckpoint

        store = ShardCheckpoint(path, {"seed": 1})
        store.load()
        return store

    def test_checkpoint_append_enospc_is_survivable(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "checkpoint.jsonl"
        store = self._store(path)
        store.record_analysis(1, {"traces_total": 3})
        size_before = path.stat().st_size

        def torn_fsync(fd):
            # a real ENOSPC append lands part of the line: emulate the
            # torn tail, then fail the durability barrier
            os.ftruncate(fd, size_before + 7)
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.util.atomicio.os.fsync", torn_fsync)
        with pytest.raises(DiskFullError):
            store.record_analysis(2, {"traces_total": 4})
        monkeypatch.undo()
        # resume: the salvage loop drops the torn tail, keeps AS#1
        resumed = self._store(path)
        assert resumed.analyses == {1: {"traces_total": 3}}
        # and once space frees up, banking continues normally
        resumed.record_analysis(2, {"traces_total": 4})
        again = self._store(path)
        assert set(again.analyses) == {1, 2}
