"""Unit tests for trace sanitization: repair, quarantine, policies."""

import pytest

from repro.netsim.addressing import IPv4Address
from repro.probing.records import QuotedLse, TraceHop
from repro.probing.sanitize import (
    AnomalyKind,
    SanitizePolicy,
    TraceSanitizationError,
    TraceSanitizer,
    is_martian,
)

from tests.conftest import make_hop, make_trace


def _clean_trace():
    return make_trace(
        [
            make_hop(1, "10.0.0.1"),
            make_hop(2, "10.0.0.2", labels=(16_005,)),
            make_hop(3, "10.0.0.3", destination_reply=True),
        ]
    )


def _kinds(result):
    return [a.kind for a in result.anomalies]


class TestIdentity:
    def test_clean_trace_is_untouched(self):
        trace = _clean_trace()
        result = TraceSanitizer().sanitize(trace)
        assert result.trace is trace  # the same object, not a copy
        assert result.anomalies == []
        assert not result.quarantined

    def test_unreached_trace_with_stars_is_clean(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1"), make_hop(2, None), make_hop(3, None)],
            reached=False,
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.trace is trace

    def test_tnt_revealed_hops_sharing_anchor_ttl_are_clean(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(3, "10.0.0.8", tnt_revealed=True),
                make_hop(3, "10.0.0.9", tnt_revealed=True),
                make_hop(3, "10.0.0.3", destination_reply=True),
            ]
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.trace is trace


class TestPerHopRepairs:
    def test_reply_ttl_out_of_range_cleared(self):
        hop = make_hop(1, "10.0.0.1").with_annotation(reply_ip_ttl=0)
        trace = make_trace([hop], reached=False)
        result = TraceSanitizer().sanitize(trace)
        assert _kinds(result) == [AnomalyKind.REPLY_TTL_RANGE]
        assert result.trace.hops[0].reply_ip_ttl is None

    def test_bad_bottom_of_stack_rebuilt(self):
        lses = (
            QuotedLse(label=16_005, tc=0, bottom_of_stack=True, ttl=1),
            QuotedLse(label=16_006, tc=0, bottom_of_stack=False, ttl=1),
        )
        hop = make_hop(1, "10.0.0.1").with_annotation(lses=lses)
        trace = make_trace([hop], reached=False)
        result = TraceSanitizer().sanitize(trace)
        assert _kinds(result) == [AnomalyKind.BAD_BOTTOM_OF_STACK]
        fixed = result.trace.hops[0].lses
        assert [e.bottom_of_stack for e in fixed] == [False, True]
        assert [e.label for e in fixed] == [16_005, 16_006]

    def test_martian_source_blanked(self):
        hop = make_hop(2, "240.1.2.3", labels=(16_005,))
        trace = make_trace([make_hop(1, "10.0.0.1"), hop], reached=False)
        result = TraceSanitizer().sanitize(trace)
        assert AnomalyKind.MARTIAN_SOURCE in _kinds(result)
        blanked = result.trace.hops[1]
        assert not blanked.responded
        assert blanked.lses is None
        assert blanked.probe_ttl == 2  # slot survives as a star

    def test_destination_stack_stripped(self):
        hop = make_hop(
            2, "10.0.0.2", labels=(16_005,), destination_reply=True
        )
        trace = make_trace([make_hop(1, "10.0.0.1"), hop])
        result = TraceSanitizer().sanitize(trace)
        assert _kinds(result) == [AnomalyKind.DESTINATION_QUOTED_STACK]
        assert result.trace.hops[1].lses is None
        assert result.trace.hops[1].destination_reply


class TestCrossHopRepairs:
    def test_decreasing_ttls_restored_by_stable_sort(self):
        trace = make_trace(
            [
                make_hop(2, "10.0.0.2"),
                make_hop(1, "10.0.0.1"),
                make_hop(3, "10.0.0.3", destination_reply=True),
            ]
        )
        result = TraceSanitizer().sanitize(trace)
        assert AnomalyKind.NON_MONOTONIC_TTL in _kinds(result)
        assert [h.probe_ttl for h in result.trace.hops] == [1, 2, 3]

    def test_identical_duplicate_dropped(self):
        dup = make_hop(2, "10.0.0.2")
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                dup,
                dup,
                make_hop(3, "10.0.0.3", destination_reply=True),
            ]
        )
        result = TraceSanitizer().sanitize(trace)
        assert AnomalyKind.DUPLICATE_HOP in _kinds(result)
        assert len(result.trace.hops) == 3

    def test_conflicting_duplicates_quarantine(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2"),
                make_hop(2, "10.0.0.9"),
            ],
            reached=False,
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.quarantined
        assert result.trace is None
        conflict = result.anomalies[-1]
        assert conflict.kind is AnomalyKind.CONFLICTING_HOPS
        assert not conflict.repaired

    def test_trailing_hops_truncated(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2", destination_reply=True),
                make_hop(3, "10.0.0.3"),
            ]
        )
        result = TraceSanitizer().sanitize(trace)
        assert AnomalyKind.TRAILING_HOPS in _kinds(result)
        assert len(result.trace.hops) == 2
        assert result.trace.hops[-1].destination_reply

    def test_reached_mismatch_repaired(self):
        trace = make_trace([make_hop(1, "10.0.0.1")], reached=True)
        result = TraceSanitizer().sanitize(trace)
        assert _kinds(result) == [AnomalyKind.REACHED_MISMATCH]
        assert result.trace.reached is False


class TestBudgetAndPolicy:
    def test_repair_budget_exceeded_quarantines(self):
        hops = [
            make_hop(ttl, "10.0.0.1").with_annotation(reply_ip_ttl=0)
            for ttl in range(1, 5)
        ]
        trace = make_trace(hops, reached=False)
        result = TraceSanitizer(max_repairs_per_trace=2).sanitize(trace)
        assert result.quarantined
        assert result.anomalies[-1].kind is AnomalyKind.REPAIR_BUDGET_EXCEEDED

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceSanitizer(max_repairs_per_trace=0)

    def test_strict_raises_on_first_anomaly(self):
        trace = make_trace([make_hop(1, "240.0.0.1")], reached=False)
        sanitizer = TraceSanitizer(policy=SanitizePolicy.STRICT)
        with pytest.raises(TraceSanitizationError) as excinfo:
            sanitizer.sanitize(trace)
        assert excinfo.value.anomaly.kind is AnomalyKind.MARTIAN_SOURCE

    def test_strict_passes_clean_traces(self):
        trace = _clean_trace()
        result = TraceSanitizer(policy=SanitizePolicy.STRICT).sanitize(trace)
        assert result.trace is trace


class TestEpochAnomalies:
    def test_single_epoch_trace_is_clean(self):
        # a churned campaign stamps every trace; same epoch throughout
        # means the network held still and the trace is untouched
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2", destination_reply=True),
            ],
            epoch_span=(1, 1),
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.trace is trace
        assert result.anomalies == []

    def test_cross_epoch_trace_quarantines(self):
        # hops stitched from two control-plane states: a label window
        # spanning the seam can fabricate evidence, so the trace is
        # withheld from detection entirely
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2"),
                make_hop(3, "10.0.0.3", destination_reply=True),
            ],
            epoch_span=(0, 2),
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.quarantined
        assert result.trace is None
        assert AnomalyKind.CROSS_EPOCH in _kinds(result)
        assert AnomalyKind.VANISHED_RESPONDER not in _kinds(result)

    def test_vanished_responder_marked(self):
        # a responder answered, then everything after it timed out and
        # the destination was never reached -- the withdrawn-path
        # signature rides along with the cross-epoch quarantine
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2"),
                make_hop(3, None),
                make_hop(4, None),
            ],
            reached=False,
            epoch_span=(0, 1),
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.quarantined
        kinds = _kinds(result)
        assert AnomalyKind.CROSS_EPOCH in kinds
        assert AnomalyKind.VANISHED_RESPONDER in kinds
        vanished = next(
            a
            for a in result.anomalies
            if a.kind is AnomalyKind.VANISHED_RESPONDER
        )
        # anchored at the first hop that went dark (TTL 3)
        assert vanished.probe_ttl == 3

    def test_reached_cross_epoch_has_no_vanished_responder(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2", destination_reply=True),
            ],
            epoch_span=(0, 1),
        )
        result = TraceSanitizer().sanitize(trace)
        assert result.quarantined
        assert AnomalyKind.VANISHED_RESPONDER not in _kinds(result)

    def test_static_campaign_traces_are_unaffected(self):
        # no dynamics attached -> no epoch span -> no epoch checks
        trace = _clean_trace()
        assert trace.epoch_span is None
        result = TraceSanitizer().sanitize(trace)
        assert result.trace is trace

    def test_strict_raises_on_cross_epoch(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1")], reached=False, epoch_span=(0, 1)
        )
        sanitizer = TraceSanitizer(policy=SanitizePolicy.STRICT)
        with pytest.raises(TraceSanitizationError) as excinfo:
            sanitizer.sanitize(trace)
        assert excinfo.value.anomaly.kind is AnomalyKind.CROSS_EPOCH


class TestAnomalyRecords:
    def test_roundtrip(self):
        trace = make_trace([make_hop(1, "10.0.0.1")], reached=True)
        (anomaly,) = TraceSanitizer().sanitize(trace).anomalies
        from repro.probing.sanitize import TraceAnomaly

        assert TraceAnomaly.from_dict(anomaly.as_dict()) == anomaly

    def test_martians(self):
        assert is_martian(IPv4Address.from_string("127.0.0.1"))
        assert is_martian(IPv4Address.from_string("224.0.0.5"))
        assert is_martian(IPv4Address.from_string("255.255.255.255"))
        assert not is_martian(IPv4Address.from_string("10.0.0.1"))
        assert not is_martian(IPv4Address.from_string("203.0.113.7"))
