"""Fingerprint result records."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netsim.vendors import Vendor


class FingerprintMethod(enum.Enum):
    """How a fingerprint was obtained."""
    SNMP = "snmpv3"
    TTL = "ttl"
    NONE = "none"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Fingerprint:
    """Outcome of fingerprinting one IP interface.

    ``exact_vendor`` is set for SNMPv3 hits; TTL hits carry only the
    ambiguity class (``vendor_class``).  An empty class means the
    interface could not be fingerprinted at all.
    """

    method: FingerprintMethod
    exact_vendor: Vendor | None
    vendor_class: frozenset[Vendor]

    def __post_init__(self) -> None:
        if self.method is FingerprintMethod.SNMP and self.exact_vendor is None:
            raise ValueError("SNMP fingerprints must carry an exact vendor")
        if self.method is FingerprintMethod.NONE and (
            self.exact_vendor is not None or self.vendor_class
        ):
            raise ValueError("empty fingerprints must carry no vendors")

    @classmethod
    def none(cls) -> "Fingerprint":
        """The empty (no-information) fingerprint."""
        return cls(
            method=FingerprintMethod.NONE,
            exact_vendor=None,
            vendor_class=frozenset(),
        )

    @classmethod
    def from_snmp(cls, vendor: Vendor) -> "Fingerprint":
        """An exact-vendor SNMPv3 fingerprint."""
        return cls(
            method=FingerprintMethod.SNMP,
            exact_vendor=vendor,
            vendor_class=frozenset({vendor}),
        )

    @classmethod
    def from_ttl(cls, vendor_class: frozenset[Vendor]) -> "Fingerprint":
        """A TTL-signature class fingerprint."""
        return cls(
            method=FingerprintMethod.TTL,
            exact_vendor=None,
            vendor_class=vendor_class,
        )

    @property
    def identified(self) -> bool:
        """True when the fingerprint narrows the vendor at all."""
        return self.method is not FingerprintMethod.NONE and bool(
            self.vendor_class
        )
