"""The measurement portfolio: Table 5 of the paper, plus per-AS
simulation scenarios derived from the paper's narrative.

The table is transcribed verbatim (AS ids, ASNs, names, roles, traces
sent, IPv4 addresses discovered, confirmation sources).  The paper's
counts hold: 25 Cisco-confirmed, 10 survey-confirmed, 25 unconfirmed;
19 ASes excluded for discovering fewer than 100 addresses, leaving 41
analyzed ASes.

Each AS also carries a :class:`~repro.topogen.deployment.DeploymentScenario`
describing how the simulator instantiates it.  Scenario knobs follow the
paper's per-AS observations where stated (ESnet runs SR everywhere but
answers no fingerprinting probe; Iliad Italy / NTT Docomo / Rakuten show
no explicit tunnels; Midco-Net shows 5%; KDDI / Telecom Italia /
Hurricane Electric / Orange have rich fingerprint coverage; Proximus is
pure LSO; ...), and role-based defaults elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.topogen.as_types import AsRole, Confirmation
from repro.topogen.deployment import DeploymentScenario
from repro.netsim.vendors import LabelRange, Vendor
from repro.util.determinism import unit_hash

#: paper threshold: ASes with fewer discovered addresses are excluded
MIN_DISCOVERED_IPS = 100


@dataclass(frozen=True, slots=True)
class AsSpec:
    """One Table 5 row plus its simulation scenario."""

    as_id: int
    asn: int
    name: str
    role: AsRole
    traces_sent: int
    ips_discovered: int
    confirmation: Confirmation
    scenario: DeploymentScenario

    @property
    def analyzed(self) -> bool:
        """Included in the paper's 41-AS analysis (>= 100 addresses)."""
        return self.ips_discovered >= MIN_DISCOVERED_IPS

    @property
    def label(self) -> str:
        """The paper's ``AS#ID`` identifier string."""
        return f"AS#{self.as_id}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS#{self.as_id} ({self.name}, AS{self.asn})"


# (id, asn, name, role, traces, ips, confirmation) -- Table 5 verbatim.
_C, _S, _N = Confirmation.CISCO, Confirmation.SURVEY, Confirmation.NONE
_TABLE5: tuple[tuple[int, int, str, AsRole, int, int, Confirmation], ...] = (
    (1, 46467, "Dish Network", AsRole.STUB, 2, 1, _C),
    (2, 29447, "Iliad Italy", AsRole.STUB, 5_888, 166, _C),
    (3, 9605, "NTT Docomo", AsRole.STUB, 10_034, 245, _C),
    (4, 63802, "Flets", AsRole.STUB, 512, 4, _C),
    (5, 2506, "NTT West", AsRole.STUB, 837, 18, _C),
    (6, 654, "OVH", AsRole.STUB, 0, 0, _N),
    (7, 5432, "Proximus", AsRole.STUB, 15_392, 677, _N),
    (8, 400843, "Audacy", AsRole.STUB, 1, 0, _N),
    (9, 400322, "NGtTel", AsRole.STUB, 15, 0, _N),
    (10, 399827, "2pifi", AsRole.STUB, 12, 4, _N),
    (11, 398872, "Big WiFi", AsRole.STUB, 6, 2, _N),
    (12, 8835, "Binkbroadband", AsRole.STUB, 0, 0, _S),
    (13, 45102, "Alibaba", AsRole.CONTENT, 14_520, 1_813, _C),
    (14, 15169, "Google", AsRole.CONTENT, 35_262, 19_427, _C),
    (15, 8075, "Microsoft", AsRole.CONTENT, 256_419, 6_365, _C),
    (16, 138384, "Rakuten", AsRole.CONTENT, 1_659, 154, _C),
    (17, 17676, "Softbank", AsRole.CONTENT, 147_605, 21_873, _C),
    (18, 30149, "Goldman Sachs", AsRole.CONTENT, 19, 10, _N),
    (19, 16509, "Amazon", AsRole.CONTENT, 635_599, 25_520, _N),
    (20, 14061, "Digital Ocean", AsRole.CONTENT, 11_743, 3_579, _N),
    (21, 5667, "Meta", AsRole.CONTENT, 0, 0, _N),
    (22, 43515, "YouTube", AsRole.CONTENT, 120, 65, _N),
    (23, 138699, "Tiktok", AsRole.CONTENT, 14, 28, _N),
    (24, 32787, "Akamai", AsRole.CONTENT, 4_274, 6_988, _N),
    (25, 13335, "Cloudflare", AsRole.CONTENT, 10_494, 32_735, _N),
    (26, 12322, "Free", AsRole.TRANSIT, 42_964, 2_024, _C),
    (27, 5410, "Bouygues", AsRole.TRANSIT, 27_771, 1_048, _C),
    (28, 577, "Bell Canada", AsRole.TRANSIT, 29_832, 3_748, _C),
    (29, 23764, "China Telecom", AsRole.TRANSIT, 11_115, 3_374, _C),
    (30, 8220, "Colt", AsRole.TRANSIT, 243_811, 7_282, _C),
    (31, 2516, "KDDI", AsRole.TRANSIT, 89_365, 12_994, _C),
    (32, 38631, "Line", AsRole.TRANSIT, 423, 12, _C),
    (33, 64049, "Reliance Jio", AsRole.TRANSIT, 7_014, 2_905, _C),
    (34, 132203, "Tencent", AsRole.TRANSIT, 7_943, 2_922, _C),
    (35, 7018, "AT&T", AsRole.TRANSIT, 649_359, 44_929, _N),
    (36, 3257, "GTT Comm.", AsRole.TRANSIT, 489_738, 234_639, _C),
    (37, 6453, "Tata Comm.", AsRole.TRANSIT, 275_874, 92_854, _N),
    (38, 6762, "Telecom Italia", AsRole.TRANSIT, 290_678, 32_313, _N),
    (39, 7473, "Singtel", AsRole.TRANSIT, 9_549, 5_206, _N),
    (40, 6939, "Hurricane El.", AsRole.TRANSIT, 652_399, 192_324, _N),
    (41, 9002, "RETN", AsRole.TRANSIT, 526_697, 27_270, _N),
    (42, 2828, "Verizon", AsRole.TRANSIT, 26_030, 570, _N),
    (43, 7922, "Comcast", AsRole.TRANSIT, 272_360, 40_382, _N),
    (44, 11232, "Midco-Net", AsRole.TRANSIT, 3_153, 1_071, _S),
    (45, 13855, "CFU-NET", AsRole.TRANSIT, 143, 72, _S),
    (46, 293, "ESnet", AsRole.TRANSIT, 277_155, 307, _S),
    (47, 31034, "Aruba", AsRole.TRANSIT, 1_186, 346, _S),
    (48, 31631, "Elevate", AsRole.TRANSIT, 73, 64, _S),
    (49, 32440, "Loni", AsRole.TRANSIT, 401, 70, _S),
    (50, 33362, "Wiktel", AsRole.TRANSIT, 117, 39, _S),
    (51, 44092, "Halservice", AsRole.TRANSIT, 140, 86, _S),
    (52, 7794, "Execulink", AsRole.TRANSIT, 599, 141, _S),
    (53, 3320, "Deutsche Telekom", AsRole.TIER1, 370_152, 65_995, _C),
    (54, 2914, "NTT Comm.", AsRole.TIER1, 504_001, 209_589, _C),
    (55, 5511, "Orange", AsRole.TIER1, 51_979, 21_376, _C),
    (56, 4637, "Telstra", AsRole.TIER1, 62_075, 18_010, _C),
    (57, 1273, "Vodafone", AsRole.TIER1, 24_308, 8_248, _C),
    (58, 1299, "Arelion", AsRole.TIER1, 615_851, 339_007, _N),
    (59, 174, "Cogent", AsRole.TIER1, 539_127, 217_700, _N),
    (60, 3356, "Level3", AsRole.TIER1, 468_812, 174_373, _N),
)

#: vendor mixes by flavour; weights need not sum to 1
_MIX_CISCO_HEAVY = ((Vendor.CISCO, 0.6), (Vendor.JUNIPER, 0.25), (Vendor.HUAWEI, 0.15))
_MIX_JUNIPER_HEAVY = ((Vendor.JUNIPER, 0.55), (Vendor.CISCO, 0.3), (Vendor.NOKIA, 0.15))
_MIX_MIXED = (
    (Vendor.CISCO, 0.4),
    (Vendor.JUNIPER, 0.28),
    (Vendor.NOKIA, 0.14),
    (Vendor.HUAWEI, 0.1),
    (Vendor.ARISTA, 0.05),
    (Vendor.LINUX, 0.03),
)


def _size_tier(ips_discovered: int) -> tuple[int, int, int, int]:
    """(n_core, n_edge, n_border, n_customers) scaled from Table 5."""
    if ips_discovered < MIN_DISCOVERED_IPS:
        return (3, 1, 1, 1)
    if ips_discovered < 1_000:
        return (6, 3, 2, 2)
    if ips_discovered < 10_000:
        return (10, 4, 3, 3)
    if ips_discovered < 100_000:
        return (14, 5, 4, 4)
    return (18, 6, 5, 5)


def _base_scenario(
    as_id: int,
    role: AsRole,
    confirmation: Confirmation,
    ips_discovered: int,
) -> DeploymentScenario:
    """Role/confirmation defaults, before narrative overrides."""
    n_core, n_edge, n_border, n_customers = _size_tier(ips_discovered)
    confirmed = confirmation.confirmed
    if confirmed:
        # Confirmed deployments: good visibility; a majority migrated
        # fully, the rest still run a legacy LDP island (Sec. 7.2: 90%
        # of SR tunnels are full-SR).
        full_sr = unit_hash("full-sr", as_id) < 0.55
        scenario = DeploymentScenario(
            deploys_sr=True,
            mpls=True,
            sr_share=1.0 if full_sr else 0.9,
            propagate_share=0.85,
            rfc4950_share=1.0,
            vendor_weights=_MIX_CISCO_HEAVY,
            snmp_share=0.12,
            ping_share=0.7,
            te_share=0.1,
            service_share=0.45,
            n_core=n_core,
            n_edge=n_edge,
            n_border=n_border,
            n_customers=n_customers,
        )
    elif role is AsRole.STUB:
        # Stubs: little MPLS, and what exists hides (26% explicit).
        scenario = DeploymentScenario(
            deploys_sr=False,
            mpls=unit_hash("stub-mpls", as_id) < 0.6,
            sr_share=0.0,
            propagate_share=0.25,
            rfc4950_share=0.4,
            vendor_weights=_MIX_JUNIPER_HEAVY,
            snmp_share=0.05,
            ping_share=0.5,
            icmp_response_rate=0.9,
            te_share=0.0,
            service_share=0.3,
            n_core=n_core,
            n_edge=n_edge,
            n_border=n_border,
            n_customers=n_customers,
        )
    else:
        # Unconfirmed Content/Transit/Tier-1: MPLS everywhere; a third
        # run undisclosed SR (the paper found evidence in 94%, mostly
        # LSO-dominated), the rest are LDP with service stacks.
        hidden_sr = unit_hash("hidden-sr", as_id) < 0.35
        scenario = DeploymentScenario(
            deploys_sr=hidden_sr,
            mpls=True,
            sr_share=0.8 if hidden_sr else 0.0,
            propagate_share=0.7,
            rfc4950_share=1.0 if hidden_sr else 0.96,
            vendor_weights=_MIX_MIXED,
            snmp_share=0.1,
            ping_share=0.6,
            te_share=0.05,
            service_share=0.14,
            entropy_share=0.1,
            rsvp_te_share=0.15,
            n_core=n_core,
            n_edge=n_edge,
            n_border=n_border,
            n_customers=n_customers,
        )
    # ~30% of SR operators customize the SRGB (survey, Sec. 3).
    if scenario.deploys_sr and unit_hash("custom-srgb", as_id) < 0.3:
        base = 400_000 + (as_id % 7) * 10_000
        scenario = replace(
            scenario, custom_srgb=LabelRange(base, base + 7_999)
        )
    return scenario


#: Narrative overrides keyed by AS id (see module docstring).
def _overrides(as_id: int, scenario: DeploymentScenario) -> DeploymentScenario:
    if as_id == 46:  # ESnet: SR everywhere, zero fingerprint coverage,
        # heavy service-SID usage (unshrinking stacks, Sec. 6.2), and the
        # paper's ground-truth validation target.
        return replace(
            scenario,
            deploys_sr=True,
            sr_share=1.0,
            propagate_share=1.0,
            rfc4950_share=1.0,
            snmp_share=0.0,
            ping_share=0.0,
            service_share=1.0,
            te_share=0.15,
            sr_policy_share=0.25,
            custom_srgb=None,
            uhp=True,
        )
    if as_id == 15:  # Microsoft: the largest SR footprint observed.
        return replace(
            scenario, sr_share=1.0, propagate_share=0.95, rfc4950_share=0.95
        )
    if as_id in (2, 3, 16):  # no explicit tunnels at all (Sec. 6.2):
        # tunnels neither propagate the TTL nor quote LSEs -> invisible
        return replace(scenario, propagate_share=0.0, rfc4950_share=0.05)
    if as_id == 44:  # Midco-Net: explicit tunnels in ~5% of paths
        return replace(
            scenario, propagate_share=0.05, rfc4950_share=0.1
        )
    if as_id in (31, 38, 40, 55):  # fingerprint-rich ASes (Sec. 6.2)
        return replace(
            scenario,
            snmp_share=0.5,
            ping_share=0.95,
            deploys_sr=True,
            sr_share=max(scenario.sr_share, 0.88),
        )
    if as_id in (24, 37, 43):  # Akamai / Tata / Comcast: service-heavy
        # networks whose tunnels betray deep stacks at the ending hop
        return replace(scenario, service_share=0.5)
    if as_id == 7:  # Proximus: 100% LSO, pure classic MPLS + stacks
        return replace(
            scenario,
            deploys_sr=False,
            mpls=True,
            sr_share=0.0,
            propagate_share=0.8,
            rfc4950_share=0.9,
            service_share=0.8,
        )
    if as_id == 52:  # Execulink: unshrinking stacks regardless of context
        return replace(
            scenario, deploys_sr=True, sr_share=0.8, service_share=1.0,
            uhp=True, propagate_share=0.95, rfc4950_share=1.0,
        )
    if as_id in (13, 27, 28):  # significant CO detections (Sec. 6.2)
        return replace(
            scenario, sr_share=1.0, propagate_share=0.9, snmp_share=0.0,
            ping_share=0.3,
        )
    if as_id in (19, 58):  # Amazon / Arelion: strong undisclosed SR
        return replace(
            scenario,
            deploys_sr=True,
            sr_share=0.9,
            propagate_share=0.85,
            rfc4950_share=1.0,
            service_share=0.3,
            sr_policy_share=0.15,
        )
    if as_id in (36, 59):  # migrations that started PE-side: the legacy
        # LDP region still fronts the ingress (LDP->SR interworking)
        return replace(
            scenario,
            deploys_sr=True,
            sr_share=0.75,
            rfc4950_share=1.0,
            ldp_at_ingress=True,
        )
    if as_id == 14:  # Google: LSO alongside strong indicators (Sec. 6.3);
        # part of the LSO evidence comes from SR-policy binding SIDs
        # surfacing mid-path (RFC 9256 splices)
        return replace(
            scenario, sr_share=0.9, service_share=0.4,
            propagate_share=0.85, sr_policy_share=0.2,
        )
    if as_id == 26:  # Free: one AS exercising heterogeneous SRGBs, the
        # source of the paper's rare (0.01%) suffix-based matches.
        return replace(scenario, heterogeneous_srgb=True)
    if as_id in (29, 34):  # confirmed but mostly hidden deployments
        return replace(
            scenario, propagate_share=0.05, rfc4950_share=0.1
        )
    if as_id == 20:  # Digital Ocean: classic MPLS whose fleet does not
        # implement RFC 4950 -- every tunnel is *implicit*, nothing ever
        # quotes an LSE, and AReST correctly finds no SR evidence
        return replace(
            scenario, deploys_sr=False, sr_share=0.0,
            propagate_share=0.9, rfc4950_share=0.0, service_share=0.0,
        )
    return scenario


class Portfolio:
    """The full 60-AS measurement portfolio."""

    def __init__(self, specs: tuple[AsSpec, ...]) -> None:
        self._specs = specs
        self._by_id = {s.as_id: s for s in specs}
        if len(self._by_id) != len(specs):
            raise ValueError("duplicate AS ids in portfolio")

    def __iter__(self):
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def spec(self, as_id: int) -> AsSpec:
        """Look up one AS by its Table 5 id."""
        try:
            return self._by_id[as_id]
        except KeyError:
            raise KeyError(f"no AS#{as_id} in portfolio") from None

    def analyzed(self) -> list[AsSpec]:
        """The 41 ASes above the 100-address threshold."""
        return [s for s in self._specs if s.analyzed]

    def excluded(self) -> list[AsSpec]:
        """The 19 ASes below the threshold."""
        return [s for s in self._specs if not s.analyzed]

    def confirmed(self) -> list[AsSpec]:
        """ASes with Cisco or survey confirmation."""
        return [s for s in self._specs if s.confirmation.confirmed]

    def by_role(self, role: AsRole) -> list[AsSpec]:
        """ASes of one hierarchy role."""
        return [s for s in self._specs if s.role is role]


def default_portfolio() -> Portfolio:
    """Build the Table 5 portfolio with narrative-derived scenarios."""
    specs = []
    for as_id, asn, name, role, traces, ips, confirmation in _TABLE5:
        scenario = _overrides(
            as_id, _base_scenario(as_id, role, confirmation, ips)
        )
        specs.append(
            AsSpec(
                as_id=as_id,
                asn=asn,
                name=name,
                role=role,
                traces_sent=traces,
                ips_discovered=ips,
                confirmation=confirmation,
                scenario=scenario,
            )
        )
    return Portfolio(tuple(specs))
