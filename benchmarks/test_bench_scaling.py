"""Scaling -- campaign cost and coverage saturation.

The paper discusses measurement coverage at length (Anaximander's
probing reduction, Fig. 17's VP contribution, the 100-address exclusion
threshold).  This benchmark sweeps the per-AS probing budget and shows
that (i) wall-clock scales roughly linearly with probes while (ii) the
*detection verdict* saturates long before the discovery curve does --
the reason Anaximander's pruning works.
"""

import time

from repro.campaign import CampaignRunner
from repro.util.tables import format_table

from benchmarks.conftest import emit

AS_ID = 28  # Bell Canada


def _run(targets: int, vps: int):
    runner = CampaignRunner(
        seed=1, targets_per_as=targets, vps_per_as=vps
    )
    start = time.perf_counter()
    result = runner.run_as(AS_ID)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_bench_scaling(benchmark):
    points = [(6, 2), (18, 3), (36, 4), (72, 6)]
    rows = []
    verdicts = []
    addresses = []
    timings = []
    first = True
    for targets, vps in points:
        if first:
            result, elapsed = benchmark.pedantic(
                lambda t=targets, v=vps: _run(t, v),
                rounds=1,
                iterations=1,
            )
            first = False
        else:
            result, elapsed = _run(targets, vps)
        discovered = len(result.dataset.distinct_addresses())
        detected = result.analysis.has_sr_evidence()
        verdicts.append(detected)
        addresses.append(discovered)
        timings.append(elapsed)
        rows.append(
            (
                f"{targets} x {vps}",
                len(result.dataset),
                discovered,
                "yes" if detected else "no",
                f"{elapsed * 1e3:.0f} ms",
            )
        )
    emit(
        format_table(
            ["targets x VPs", "traces", "addresses", "SR detected",
             "wall-clock"],
            rows,
            title=f"Scaling sweep on AS#{AS_ID}",
        )
    )

    # Shape: the verdict is already correct at the smallest budget;
    # discovery keeps growing; cost stays laptop-trivial at 12x budget.
    assert all(verdicts)
    assert addresses == sorted(addresses)
    assert addresses[-1] > addresses[0]
    assert timings[-1] < 10.0
