"""SR-LDP interworking analysis (Sec. 7.2 of the paper).

Within a trace, a *tunnel observation* is a maximal run of hops showing
MPLS evidence.  Each hop of the run belongs to an **SR cloud** (covered
by a strong flag) or an **LDP cloud** (MPLS without SR evidence).  The
cloud sequence determines the tunnel's nature:

- ``[SR]``                      -> full-SR tunnel
- ``[SR, LDP]``                 -> SR-to-LDP interworking (the dominant
  mode: 95% in the paper, needs a Mapping Server)
- ``[LDP, SR]``                 -> LDP-to-SR (~2%)
- ``[LDP, SR, LDP]``            -> LDP-SR-LDP (~2%)
- ``[SR, LDP, SR]``             -> SR-LDP-SR (~1%)
- anything longer               -> OTHER (combinations of the above)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.classification import HopArea
from repro.core.flags import Flag, STRONG_FLAGS
from repro.core.labels import sequence_match


class InterworkingMode(enum.Enum):
    """The tunnel compositions of Sec. 7.2."""
    FULL_SR = "full-SR"
    SR_TO_LDP = "SR->LDP"
    LDP_TO_SR = "LDP->SR"
    LDP_SR_LDP = "LDP-SR-LDP"
    SR_LDP_SR = "SR-LDP-SR"
    FULL_LDP = "full-LDP"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Cloud:
    """A maximal same-plane run inside one tunnel observation."""

    plane: HopArea  # SR or MPLS (the paper's "LDP cloud")
    hop_indices: tuple[int, ...]

    @property
    def size(self) -> int:
        """Hops in this cloud."""
        return len(self.hop_indices)


@dataclass(frozen=True, slots=True)
class TunnelComposition:
    """One tunnel observation decomposed into clouds."""

    clouds: tuple[Cloud, ...]
    mode: InterworkingMode

    @property
    def is_interworking(self) -> bool:
        """True when the tunnel mixes SR and LDP clouds."""
        return self.mode not in (
            InterworkingMode.FULL_SR,
            InterworkingMode.FULL_LDP,
        )

    def sr_cloud_sizes(self) -> list[int]:
        """Sizes of the SR clouds, path order."""
        return [c.size for c in self.clouds if c.plane is HopArea.SR]

    def ldp_cloud_sizes(self) -> list[int]:
        """Sizes of the LDP clouds, path order."""
        return [c.size for c in self.clouds if c.plane is HopArea.MPLS]


_MODE_BY_SEQUENCE: dict[tuple[HopArea, ...], InterworkingMode] = {
    (HopArea.SR,): InterworkingMode.FULL_SR,
    (HopArea.MPLS,): InterworkingMode.FULL_LDP,
    (HopArea.SR, HopArea.MPLS): InterworkingMode.SR_TO_LDP,
    (HopArea.MPLS, HopArea.SR): InterworkingMode.LDP_TO_SR,
    (HopArea.MPLS, HopArea.SR, HopArea.MPLS): InterworkingMode.LDP_SR_LDP,
    (HopArea.SR, HopArea.MPLS, HopArea.SR): InterworkingMode.SR_LDP_SR,
}


def analyze_tunnel_composition(
    areas: Sequence[HopArea],
) -> list[TunnelComposition]:
    """Decompose a trace's hop areas into tunnels and classify each.

    ``areas`` comes from :func:`repro.core.classification.classify_hops`;
    IP hops delimit tunnels.
    """
    tunnels: list[TunnelComposition] = []
    run: list[tuple[int, HopArea]] = []
    for i, area in enumerate(areas):
        if area is HopArea.IP:
            if run:
                tunnels.append(_compose(run))
                run = []
        else:
            run.append((i, area))
    if run:
        tunnels.append(_compose(run))
    return tunnels


def _compose(run: list[tuple[int, HopArea]]) -> TunnelComposition:
    clouds: list[Cloud] = []
    current: list[int] = []
    plane: HopArea | None = None
    for index, area in run:
        if area is plane:
            current.append(index)
        else:
            if plane is not None:
                clouds.append(Cloud(plane=plane, hop_indices=tuple(current)))
            plane, current = area, [index]
    assert plane is not None
    clouds.append(Cloud(plane=plane, hop_indices=tuple(current)))
    sequence = tuple(c.plane for c in clouds)
    mode = _MODE_BY_SEQUENCE.get(sequence, InterworkingMode.OTHER)
    return TunnelComposition(clouds=tuple(clouds), mode=mode)


def refine_areas_for_interworking(
    trace,
    segments,
    areas: Sequence[HopArea],
) -> list[HopArea]:
    """Refine per-hop areas before interworking decomposition (Sec. 6.3).

    Two adjustments the paper motivates to avoid misclassifying full-SR
    tunnels as interworking:

    1. when a trace already carries strong SR evidence, its LSO-flagged
       hops are credited to SR ("the detection strength of Lso-flagged
       segments is significantly enhanced because explicit evidence of
       Sr-Mpls has already been confirmed");
    2. a *single* labeled hop directly sandwiched between SR hops is
       credited to SR -- it is the mid-tunnel label change of a TE stack
       (adjacency-SID pop), not an LDP island.  Longer runs are left
       alone so genuine SR-LDP-SR chains survive.
    """
    refined = list(areas)
    if any(s.flag in STRONG_FLAGS for s in segments):
        for segment in segments:
            if segment.flag is Flag.LSO:
                for i in segment.hop_indices:
                    refined[i] = HopArea.SR
    while True:  # iterate to a fixed point so adjacent fixes propagate
        before = list(refined)
        # Same-label adoption: an unflagged labeled hop whose active
        # label (sequence-)matches an SR hop in the same contiguous
        # non-IP run carries the same segment -- the CO run merely broke
        # on an implicit hop or a lone fingerprint (Sec. 6.3 FN cases).
        for run in _non_ip_runs(refined):
            sr_labels = [
                trace.hops[i].top_label
                for i in run
                if refined[i] is HopArea.SR
                and trace.hops[i].top_label is not None
            ]
            if not sr_labels:
                continue
            for i in run:
                hop = trace.hops[i]
                if (
                    refined[i] is HopArea.MPLS
                    and hop.top_label is not None
                    and any(
                        sequence_match(hop.top_label, l) for l in sr_labels
                    )
                ):
                    refined[i] = HopArea.SR
        for i in range(len(refined)):
            if refined[i] is not HopArea.MPLS:
                continue
            hop = trace.hops[i]
            left = refined[i - 1] if i > 0 else None
            right = refined[i + 1] if i + 1 < len(refined) else None
            # Mid-TE label change (or implicit gap) sandwiched by SR.
            if left is HopArea.SR and right is HopArea.SR:
                refined[i] = HopArea.SR
                continue
            # TE head/tail: the hop's *inner* labels contain the adjacent
            # SR run's active label -- the stack encodes the very segment
            # the neighbouring hops are flagged for (Fig. 3 semantics).
            if hop.stack_depth >= 2 and (
                (left is HopArea.SR and _inner_matches(trace, i, i - 1))
                or (right is HopArea.SR and _inner_matches(trace, i, i + 1))
            ):
                refined[i] = HopArea.SR
                continue
            # Service-SID tail: after PHP the transport label is gone and
            # the ending hop quotes only the service SID -- whose value
            # appeared as an *inner* label in the preceding SR hop's
            # quoted stack.  A genuine LDP tail label never did.
            if (
                hop.top_label is not None
                and left is HopArea.SR
                and _top_matches_neighbor_inner(trace, i, i - 1)
            ):
                refined[i] = HopArea.SR
        if refined == before:  # monotone MPLS->SR, so this terminates
            break
    return refined


def _top_matches_neighbor_inner(trace, index: int, neighbor: int) -> bool:
    hop = trace.hops[index]
    other = trace.hops[neighbor]
    if hop.top_label is None or other.lses is None:
        return False
    return any(e.label == hop.top_label for e in other.lses[1:])


def _non_ip_runs(areas: list[HopArea]) -> list[list[int]]:
    runs: list[list[int]] = []
    current: list[int] = []
    for i, area in enumerate(areas):
        if area is HopArea.IP:
            if current:
                runs.append(current)
            current = []
        else:
            current.append(i)
    if current:
        runs.append(current)
    return runs


def _inner_matches(trace, index: int, neighbor: int) -> bool:
    hop = trace.hops[index]
    other = trace.hops[neighbor]
    if hop.lses is None or other.top_label is None:
        return False
    return any(e.label == other.top_label for e in hop.lses[1:])


def interworking_summary(
    compositions: Iterable[TunnelComposition],
) -> dict[InterworkingMode, int]:
    """Count tunnels per mode (the Fig. 11 aggregation)."""
    counts: dict[InterworkingMode, int] = {}
    for composition in compositions:
        counts[composition.mode] = counts.get(composition.mode, 0) + 1
    return counts
