"""Tests for plain-text report rendering."""

from repro.analysis.report import (
    render_deployment,
    render_flag_proportions,
    render_validation,
)
from repro.analysis.validation import validate_against_truth
from repro.util.tables import format_table

import pytest


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["a", "long-header"],
            [[1, 2.5], ["xx", "y"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert "2.500" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestRenderers:
    def test_flag_proportions_table(self, small_portfolio_results):
        text = render_flag_proportions(small_portfolio_results)
        assert "CVR" in text and "LSO" in text
        assert "AS#46" in text and "ESnet" in text

    def test_validation_table(self, esnet_result):
        report = validate_against_truth(esnet_result)
        text = render_validation(report)
        assert "Table 3" in text
        assert "CO" in text
        assert "0%" in text  # zero FP rate somewhere

    def test_deployment_table(self, small_portfolio_results):
        text = render_deployment(small_portfolio_results)
        assert "hit-SR" in text
        assert "Microsoft" in text
