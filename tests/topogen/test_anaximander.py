"""Tests for Anaximander-style target selection."""

import pytest

from repro.topogen.anaximander import build_target_list
from repro.topogen.internet import build_measurement_network
from repro.topogen.portfolio import default_portfolio


@pytest.fixture(scope="module")
def net():
    spec = default_portfolio().spec(27)
    return build_measurement_network(spec, ["VM1"], seed=2)


class TestTargetList:
    def test_targets_inside_announced_prefixes(self, net):
        targets = build_target_list(net, per_prefix=2, seed=2)
        for address in targets:
            assert any(
                p.contains(address) for p in net.target_prefixes
            )

    def test_per_prefix_cap(self, net):
        targets = build_target_list(net, per_prefix=2, seed=2)
        for prefix in net.target_prefixes:
            hits = sum(1 for a in targets if prefix.contains(a))
            assert hits <= 2

    def test_round_robin_interleaving(self, net):
        targets = build_target_list(net, per_prefix=3, seed=2)
        addresses = list(targets)
        k = len(net.target_prefixes)
        # the first k targets hit k distinct prefixes
        first_prefixes = set()
        for address in addresses[:k]:
            for i, prefix in enumerate(net.target_prefixes):
                if prefix.contains(address):
                    first_prefixes.add(i)
        assert len(first_prefixes) == k

    def test_limit(self, net):
        targets = build_target_list(net, per_prefix=3, limit=5, seed=2)
        assert len(targets) == 5

    def test_no_duplicates(self, net):
        targets = build_target_list(net, per_prefix=3, seed=2)
        addresses = list(targets)
        assert len(addresses) == len(set(addresses))

    def test_deterministic(self, net):
        a = build_target_list(net, per_prefix=3, seed=2)
        b = build_target_list(net, per_prefix=3, seed=2)
        assert a.addresses == b.addresses

    def test_invalid_per_prefix(self, net):
        with pytest.raises(ValueError):
            build_target_list(net, per_prefix=0)
