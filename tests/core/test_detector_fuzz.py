"""Fuzz: the detector must accept arbitrary quoted stacks gracefully."""

from hypothesis import given, settings, strategies as st

from repro.core.detector import ArestDetector, effective_labels
from repro.core.flags import SEQUENCE_FLAGS

from tests.conftest import make_hop, make_trace

arbitrary_stack = st.lists(
    st.integers(min_value=0, max_value=2**20 - 1), max_size=6
)
hop_specs = st.lists(
    st.tuples(st.booleans(), arbitrary_stack), max_size=12
)


@settings(max_examples=150, deadline=None)
@given(hop_specs)
def test_detector_never_crashes_and_stays_well_formed(specs):
    hops = []
    for i, (responds, labels) in enumerate(specs):
        hops.append(
            make_hop(
                i + 1,
                f"10.0.{i}.1" if responds else None,
                labels=tuple(labels) if responds else (),
            )
        )
    trace = make_trace(hops)
    segments = ArestDetector().detect(trace, {})
    covered: set[int] = set()
    for segment in segments:
        for index in segment.hop_indices:
            assert index not in covered
            covered.add(index)
            hop = trace.hops[index]
            assert hop.address is not None
            assert effective_labels(hop)  # flagged hops carry signal
        if segment.flag in SEQUENCE_FLAGS:
            assert segment.length >= 2
        # flagged labels are never reserved values
        assert all(label >= 16 for label in segment.top_labels)
