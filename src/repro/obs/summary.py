"""Aggregating and rendering a campaign's telemetry directory.

:func:`summarize_telemetry` reads the artifacts a
:class:`~repro.obs.session.TelemetrySession` wrote (``manifest.json``
plus ``telemetry.jsonl``) into a :class:`TelemetrySummary`:
per-scope/per-stage wall-clock totals, per-scope counter tallies,
campaign-wide counter totals, and per-scope last-write-wins gauges
(cache behaviour, churn-event tallies).  Renderers turn a summary into
the operator surfaces:

- :func:`render_telemetry_report` -- the ``arest telemetry <dir>``
  text view (run provenance, a per-AS stage-timing table, a per-AS
  counter table, and the counter totals);
- :func:`performance_section` -- the markdown "Performance" section
  ``arest report --telemetry-dir`` appends to the campaign report;
- :mod:`repro.obs.prometheus` -- the scrapeable textfile export.

Everything tolerates the partial artifacts a crashed run leaves
behind: missing manifest, torn final line, batches without a ``flush``
marker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import load_manifest
from repro.obs.sink import EVENTS_FILENAME, load_events
from repro.obs.telemetry import merge_counters
from repro.obs.trace import merge_histogram_dicts
from repro.util.tables import format_table

#: canonical stage ordering for tables (extras appended alphabetically)
STAGE_ORDER = (
    "as",
    "setup",
    "topology",
    "probe",
    "sanitize",
    "fingerprint",
    "detect",
    "analyze",
    "portfolio",
)


@dataclass(slots=True)
class TelemetrySummary:
    """Aggregated view of one telemetry directory."""

    directory: Path
    #: parsed ``manifest.json`` (None when missing)
    manifest: dict | None = None
    #: scope -> stage -> summed seconds
    stage_seconds: dict[object, dict[str, float]] = field(default_factory=dict)
    #: scope -> counter name -> value
    counters: dict[object, dict[str, int]] = field(default_factory=dict)
    #: counter totals across all scopes
    totals: dict[str, int] = field(default_factory=dict)
    #: scope -> gauge name -> last written value (gauges are
    #: last-write-wins, never summed -- resumed scopes re-report)
    gauges: dict[object, dict[str, float]] = field(default_factory=dict)
    #: stage -> merged fixed-bucket latency histogram (identical bucket
    #: edges everywhere, so cross-scope merging is vector addition)
    histograms: dict[str, dict] = field(default_factory=dict)
    #: scopes whose final batch carried a ``flush`` marker
    flushed_scopes: set = field(default_factory=set)
    #: corrupt lines the loader dropped
    dropped_lines: int = 0

    def as_scopes(self) -> list[int]:
        """The AS-id scopes seen, sorted."""
        scopes = set(self.stage_seconds) | set(self.counters)
        return sorted(s for s in scopes if isinstance(s, int))

    def stages(self) -> list[str]:
        """Every stage observed, in canonical order."""
        seen = {
            stage
            for per_scope in self.stage_seconds.values()
            for stage in per_scope
        }
        ordered = [stage for stage in STAGE_ORDER if stage in seen]
        ordered.extend(sorted(seen.difference(STAGE_ORDER)))
        return ordered


def summarize_telemetry(directory: str | Path) -> TelemetrySummary:
    """Aggregate a telemetry directory into a :class:`TelemetrySummary`."""
    directory = Path(directory)
    summary = TelemetrySummary(directory=directory)
    summary.manifest = load_manifest(directory)
    records, dropped = load_events(directory / EVENTS_FILENAME)
    summary.dropped_lines = dropped
    for record in records:
        scope = record.get("scope")
        kind = record.get("kind")
        if kind == "span":
            per_scope = summary.stage_seconds.setdefault(scope, {})
            stage = str(record.get("stage", "unknown"))
            per_scope[stage] = per_scope.get(stage, 0.0) + float(
                record.get("seconds", 0.0)
            )
        elif kind == "counter":
            name = str(record.get("name", "unknown"))
            value = int(record.get("value", 0))
            per_scope = summary.counters.setdefault(scope, {})
            per_scope[name] = per_scope.get(name, 0) + value
            merge_counters(summary.totals, {name: value})
        elif kind == "gauge":
            name = str(record.get("name", "unknown"))
            per_scope_gauges = summary.gauges.setdefault(scope, {})
            per_scope_gauges[name] = float(record.get("value", 0.0))
        elif kind == "hist":
            stage = str(record.get("stage", "unknown"))
            merge_histogram_dicts(summary.histograms, {stage: record})
        elif kind == "flush":
            summary.flushed_scopes.add(scope)
    return summary


def summary_as_dict(summary: TelemetrySummary) -> dict:
    """Machine-readable view of a summary (``arest telemetry --json``).

    Scope keys become strings (JSON objects cannot key on ints); the
    content otherwise mirrors the text tables one to one, so CI and the
    timeline tooling share a single parser instead of scraping tables.
    """
    return {
        "directory": str(summary.directory),
        "manifest": summary.manifest,
        "stages": summary.stages(),
        "stage_seconds": {
            str(scope): dict(sorted(per_stage.items()))
            for scope, per_stage in sorted(
                summary.stage_seconds.items(), key=lambda item: str(item[0])
            )
        },
        "counters": {
            str(scope): dict(sorted(per_scope.items()))
            for scope, per_scope in sorted(
                summary.counters.items(), key=lambda item: str(item[0])
            )
        },
        "totals": dict(sorted(summary.totals.items())),
        "gauges": {
            str(scope): dict(sorted(per_scope.items()))
            for scope, per_scope in sorted(
                summary.gauges.items(), key=lambda item: str(item[0])
            )
        },
        "histograms": {
            stage: dict(summary.histograms[stage])
            for stage in sorted(summary.histograms)
        },
        "flushed_scopes": sorted(
            str(scope) for scope in summary.flushed_scopes
        ),
        "dropped_lines": summary.dropped_lines,
    }


#: the per-AS counter columns the compact table shows (full tallies
#: remain available in the totals table and the raw JSONL)
_KEY_COUNTERS = (
    ("traces_collected", "Traces"),
    ("traces_quarantined", "Quar."),
    ("probes_attempted", "Probes"),
    ("probe_retries", "Retries"),
    ("faults_injected", "Faults"),
    ("fingerprints", "Fprints"),
    ("flags_total", "Flags"),
    ("anomalies_total", "Anom."),
)


def _manifest_lines(summary: TelemetrySummary) -> list[str]:
    manifest = summary.manifest
    if manifest is None:
        return [f"telemetry: {summary.directory} (no manifest found)"]
    env = manifest.get("environment", {})
    duration = manifest.get("duration_seconds")
    lines = [
        f"run: {manifest.get('command')} seed={manifest.get('seed')} "
        f"jobs={manifest.get('jobs')} exit={manifest.get('exit_status')}",
        f"host: {env.get('hostname')} ({env.get('platform')}) "
        f"python {env.get('python_version')} "
        f"repro {env.get('package_version')}",
    ]
    if duration is not None:
        lines.append(f"wall clock: {duration:.2f}s")
    return lines


def render_telemetry_report(summary: TelemetrySummary) -> str:
    """The ``arest telemetry <dir>`` text view."""
    parts = _manifest_lines(summary)
    if summary.dropped_lines:
        parts.append(
            f"WARNING: dropped {summary.dropped_lines} corrupt telemetry "
            f"line(s) (crash-truncated stream)"
        )
    as_scopes = summary.as_scopes()
    stages = [s for s in summary.stages() if s != "portfolio"]
    if as_scopes and stages:
        rows = []
        for scope in as_scopes:
            per_stage = summary.stage_seconds.get(scope, {})
            rows.append(
                [
                    f"AS#{scope}",
                    *(
                        f"{per_stage[stage]:.3f}" if stage in per_stage else "-"
                        for stage in stages
                    ),
                ]
            )
        header = ["AS", *(("total" if s == "as" else s) for s in stages)]
        parts.append("")
        parts.append(
            format_table(header, rows, title="Per-stage wall-clock seconds")
        )
    if as_scopes:
        rows = []
        for scope in as_scopes:
            counters = summary.counters.get(scope, {})
            rows.append(
                [
                    f"AS#{scope}",
                    *(
                        str(counters.get(name, 0))
                        for name, _ in _KEY_COUNTERS
                    ),
                ]
            )
        parts.append("")
        parts.append(
            format_table(
                ["AS", *(label for _, label in _KEY_COUNTERS)],
                rows,
                title="Per-AS counters",
            )
        )
    if summary.totals:
        parts.append("")
        parts.append(
            format_table(
                ["Counter", "Total"],
                [
                    (name, str(value))
                    for name, value in sorted(summary.totals.items())
                ],
                title="Counter totals",
            )
        )
    if not as_scopes and not summary.totals:
        parts.append("(no telemetry events recorded)")
    return "\n".join(parts)


def performance_section(summary: TelemetrySummary) -> list[str]:
    """Markdown "Performance" section for the campaign report."""
    lines = ["## Performance", ""]
    manifest = summary.manifest
    if manifest is not None:
        duration = manifest.get("duration_seconds")
        lines.append(
            f"- run: `{manifest.get('command')}` seed="
            f"{manifest.get('seed')} jobs={manifest.get('jobs')} "
            f"exit={manifest.get('exit_status')}"
            + (f", {duration:.2f}s wall clock" if duration is not None else "")
        )
    as_scopes = summary.as_scopes()
    stages = [s for s in summary.stages() if s != "portfolio"]
    if as_scopes and stages:
        header = ["AS", *(("total" if s == "as" else s) for s in stages)]
        table_lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        for scope in as_scopes:
            per_stage = summary.stage_seconds.get(scope, {})
            cells = [
                f"{per_stage[stage]:.3f}" if stage in per_stage else "-"
                for stage in stages
            ]
            table_lines.append(
                "| " + " | ".join([f"AS#{scope}", *cells]) + " |"
            )
        lines.append("")
        lines.extend(table_lines)
    if summary.totals:
        interesting = ", ".join(
            f"{name}={value}"
            for name, value in sorted(summary.totals.items())
            if value
        )
        lines.extend(["", f"- counter totals: {interesting}"])
    lines.append("")
    return lines
