"""Fig. 17 -- cumulative unique hops as vantage points are added.

The paper: slow growth, reasonably spread discovery, no extreme skew
where a single VP finds the majority of hops.
"""

from repro.analysis.vp_coverage import (
    discovery_skew,
    normalized_curve,
    vp_discovery_curve,
)
from repro.campaign import CampaignRunner
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig17_vp_cdf(benchmark):
    # A dedicated run with a wider VP fleet to give the CDF substance.
    runner = CampaignRunner(seed=1, vps_per_as=10, targets_per_as=24)
    result = benchmark.pedantic(
        lambda: runner.run_as(54),  # NTT: a large Tier-1
        rounds=1,
        iterations=1,
    )
    curve = vp_discovery_curve(result.dataset)
    normalized = normalized_curve(curve)
    emit(
        format_table(
            ["VP", "new", "cumulative", "share"],
            [
                (p.vp, p.new_addresses, p.cumulative_addresses, f"{s:.2f}")
                for p, s in zip(curve, normalized)
            ],
            title="Fig. 17 -- unique addresses vs. VPs added",
        )
    )

    # Shape: monotone growth to 100%; first VP finds a core set; later
    # VPs still contribute; no single VP dominates discovery.
    assert normalized[-1] == 1.0
    assert normalized == sorted(normalized)
    assert normalized[0] > 0.3  # a core set appears immediately
    assert sum(p.new_addresses > 0 for p in curve[1:]) >= 1
    assert discovery_skew(curve) < 0.9
