"""Observability: telemetry recording, run manifests, reporting exports.

The campaign's execution story (PRs 1-3) emits rich internal state --
stage transitions, retries, quarantines, sanitizer anomalies -- and this
package makes it observable without touching the determinism contract:
all wall-clock data lives in telemetry artifacts only, and the default
:data:`~repro.obs.telemetry.NULL_TELEMETRY` path is zero-overhead.

Layout:

- :mod:`repro.obs.telemetry` -- in-process recorders (spans, counters);
- :mod:`repro.obs.sink` -- crash-safe JSONL event stream;
- :mod:`repro.obs.manifest` -- run provenance (``manifest.json``);
- :mod:`repro.obs.session` -- campaign-scoped orchestration;
- :mod:`repro.obs.summary` -- aggregation + text/markdown rendering;
- :mod:`repro.obs.prometheus` -- scrapeable textfile export;
- :mod:`repro.obs.trace` -- distributed tracing: context propagation,
  clock anchoring, timeline/critical-path reconstruction, fixed-bucket
  latency histograms;
- :mod:`repro.obs.logsetup` -- CLI logging configuration.
"""

from repro.obs.manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    begin_manifest,
    load_manifest,
)
from repro.obs.prometheus import (
    render_latency_histograms,
    render_prometheus,
)
from repro.obs.session import (
    PORTFOLIO_SCOPE,
    PROMETHEUS_FILENAME,
    TelemetrySession,
)
from repro.obs.sink import EVENTS_FILENAME, TelemetryWriter, load_events
from repro.obs.summary import (
    TelemetrySummary,
    performance_section,
    render_telemetry_report,
    summarize_telemetry,
    summary_as_dict,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    merge_counters,
)
from repro.obs.trace import (
    LATENCY_BUCKETS,
    ClockAnchor,
    LatencyHistogram,
    Timeline,
    TraceContext,
    critical_path,
    load_timeline,
    render_timeline,
    stragglers,
    timeline_report_dict,
    trace_event_json,
)

__all__ = [
    "EVENTS_FILENAME",
    "LATENCY_BUCKETS",
    "MANIFEST_FILENAME",
    "NULL_TELEMETRY",
    "ClockAnchor",
    "LatencyHistogram",
    "NullTelemetry",
    "PORTFOLIO_SCOPE",
    "PROMETHEUS_FILENAME",
    "RunManifest",
    "Telemetry",
    "TelemetrySession",
    "TelemetrySummary",
    "TelemetryWriter",
    "Timeline",
    "TraceContext",
    "begin_manifest",
    "critical_path",
    "load_events",
    "load_manifest",
    "load_timeline",
    "merge_counters",
    "performance_section",
    "render_latency_histograms",
    "render_prometheus",
    "render_telemetry_report",
    "render_timeline",
    "stragglers",
    "summarize_telemetry",
    "summary_as_dict",
    "timeline_report_dict",
    "trace_event_json",
]
