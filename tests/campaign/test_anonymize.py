"""Tests for prefix-preserving dataset anonymization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.anonymize import (
    PrefixPreservingAnonymizer,
    shared_prefix_length,
)
from repro.netsim.addressing import IPv4Address

from tests.conftest import make_hop, make_trace

addresses = st.integers(min_value=0, max_value=2**32 - 1).map(IPv4Address)


class TestAddressAnonymization:
    def test_deterministic(self):
        a = PrefixPreservingAnonymizer("k")
        b = PrefixPreservingAnonymizer("k")
        addr = IPv4Address.from_string("10.1.2.3")
        assert a.anonymize_address(addr) == b.anonymize_address(addr)

    def test_key_sensitivity(self):
        addr = IPv4Address.from_string("10.1.2.3")
        assert PrefixPreservingAnonymizer("k1").anonymize_address(
            addr
        ) != PrefixPreservingAnonymizer("k2").anonymize_address(addr)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer("")

    @settings(max_examples=50, deadline=None)
    @given(addresses, addresses)
    def test_prefix_preservation(self, a, b):
        anonymizer = PrefixPreservingAnonymizer("prop-key")
        before = shared_prefix_length(a, b)
        after = shared_prefix_length(
            anonymizer.anonymize_address(a),
            anonymizer.anonymize_address(b),
        )
        assert after == before

    @settings(max_examples=50, deadline=None)
    @given(addresses, addresses)
    def test_injective(self, a, b):
        anonymizer = PrefixPreservingAnonymizer("inj-key")
        if a != b:
            assert anonymizer.anonymize_address(
                a
            ) != anonymizer.anonymize_address(b)

    def test_actually_changes_addresses(self):
        anonymizer = PrefixPreservingAnonymizer("change")
        sample = [
            IPv4Address.from_string(f"10.0.{i}.1") for i in range(16)
        ]
        changed = sum(
            1 for a in sample if anonymizer.anonymize_address(a) != a
        )
        assert changed >= 14  # all but freak coincidences


class TestDatasetAnonymization:
    def _dataset(self):
        from repro.campaign.dataset import TraceDataset

        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", truth_planes=("sr",)),
                make_hop(2, None),
                make_hop(3, "10.0.0.3", labels=(16_005,)),
            ]
        )
        return TraceDataset(target_asn=293, traces=[trace])

    def test_truth_stripped_by_default(self):
        dataset = self._dataset()
        released = PrefixPreservingAnonymizer("rel").anonymize_dataset(
            dataset
        )
        for trace in released:
            for hop in trace.hops:
                assert hop.truth_planes == ()
                assert hop.truth_asn is None
                assert hop.truth_router_id is None

    def test_labels_and_structure_survive(self):
        dataset = self._dataset()
        released = PrefixPreservingAnonymizer("rel").anonymize_dataset(
            dataset
        )
        original = dataset.traces[0]
        anonymized = released.traces[0]
        assert len(anonymized) == len(original)
        assert anonymized.hops[1].address is None  # stars stay stars
        assert anonymized.hops[2].lses == original.hops[2].lses

    def test_original_untouched(self):
        dataset = self._dataset()
        PrefixPreservingAnonymizer("rel").anonymize_dataset(dataset)
        assert dataset.traces[0].hops[0].truth_planes == ("sr",)

    def test_metadata_marked(self):
        released = PrefixPreservingAnonymizer("rel").anonymize_dataset(
            self._dataset()
        )
        assert released.metadata["anonymized"] == "prefix-preserving"

    def test_detection_survives_anonymization(self, esnet_result):
        """AReST's verdict must be identical on the released dataset:
        everything it uses is either preserved (labels, stars, order) or
        bijectively renamed (addresses)."""
        from repro.core.detector import ArestDetector
        from repro.core.flags import Flag

        released = PrefixPreservingAnonymizer("pub").anonymize_dataset(
            esnet_result.dataset
        )
        detector = ArestDetector()
        def count(dataset):
            from collections import Counter

            seen, counts = set(), Counter()
            for trace in dataset:
                for segment in detector.detect(trace, {}):
                    if segment.key() not in seen:
                        seen.add(segment.key())
                        counts[segment.flag] += 1
            return counts

        assert count(released) == count(esnet_result.dataset)
