"""Tests for RSVP-TE signaled LSPs."""

import pytest

from repro.netsim.rsvp import RsvpLsp, RsvpTeState
from repro.netsim.tunnels import TunnelPolicy
from repro.netsim.vendors import VENDOR_PROFILES, Vendor
from repro.probing.tnt import TntProber

from tests.conftest import TARGET_ASN, ChainNetwork


def rsvp_chain(**kwargs) -> ChainNetwork:
    return ChainNetwork(
        sr=False,
        ldp=True,
        policy=TunnelPolicy(asn=TARGET_ASN, rsvp_te_share=1.0),
        **kwargs,
    )


class TestSignaling:
    def test_lsp_shape(self, ldp_chain):
        rsvp = RsvpTeState(ldp_chain.network, seed=1)
        path = [r.router_id for r in ldp_chain.routers]
        lsp = rsvp.signal_lsp(path)
        assert lsp.head == path[0]
        assert lsp.tail == path[-1]
        assert lsp.labels[0] is None  # head pushes, never advertises
        assert lsp.labels[-1] is None  # PHP at the tail
        assert all(l is not None for l in lsp.labels[1:-1])

    def test_labels_from_vendor_pool(self, ldp_chain):
        rsvp = RsvpTeState(ldp_chain.network, seed=1)
        path = [r.router_id for r in ldp_chain.routers]
        lsp = rsvp.signal_lsp(path)
        pool = VENDOR_PROFILES[Vendor.CISCO].dynamic_pool
        assert all(l in pool for l in lsp.labels[1:-1])

    def test_non_adjacent_route_rejected(self, ldp_chain):
        rsvp = RsvpTeState(ldp_chain.network)
        ids = [r.router_id for r in ldp_chain.routers]
        with pytest.raises(ValueError):
            rsvp.signal_lsp([ids[0], ids[2]])

    def test_loopy_route_rejected(self):
        with pytest.raises(ValueError):
            RsvpLsp(lsp_id=1, path=(1, 2, 1), labels=(None, 5, None))

    def test_next_step_walks_the_route(self, ldp_chain):
        rsvp = RsvpTeState(ldp_chain.network, seed=1)
        path = [r.router_id for r in ldp_chain.routers]
        lsp = rsvp.signal_lsp(path)
        # at the first transit hop, the step leads to the second with
        # the second's label; at the penultimate, it pops (None)
        step = rsvp.next_step(path[1], lsp.labels[1])
        assert step == (path[2], lsp.labels[2])
        step = rsvp.next_step(path[-2], lsp.labels[-2])
        assert step == (path[-1], None)

    def test_unknown_label(self, ldp_chain):
        rsvp = RsvpTeState(ldp_chain.network)
        assert rsvp.lookup(0, 12_345) is None
        assert rsvp.next_step(0, 12_345) is None

    def test_lsps_through(self, ldp_chain):
        rsvp = RsvpTeState(ldp_chain.network, seed=1)
        path = [r.router_id for r in ldp_chain.routers]
        lsp = rsvp.signal_lsp(path)
        assert rsvp.lsps_through(path[2]) == [lsp]
        assert rsvp.lsps_through(99) == []


class TestRsvpForwarding:
    def test_per_hop_labels_differ(self):
        chain = rsvp_chain()
        trace = TntProber(chain.engine, seed=1).trace(
            chain.vp.router_id, chain.target
        )
        labels = [h.top_label for h in trace.labeled_hops()]
        assert len(labels) >= 3
        assert len(set(labels)) == len(labels)  # local significance

    def test_truth_planes_are_rsvp(self):
        chain = rsvp_chain()
        trace = TntProber(chain.engine, seed=1).trace(
            chain.vp.router_id, chain.target
        )
        for hop in trace.labeled_hops():
            assert hop.truth_planes[0] == "rsvp"

    def test_delivery(self):
        chain = rsvp_chain()
        from repro.netsim.forwarding import ReplyKind

        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 64
        )
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_never_flagged_as_sr(self):
        """RSVP-TE tunnels are pure negatives for every AReST flag: one
        distinct label per hop, no stacks, no vendor SR ranges."""
        from repro.core.detector import ArestDetector

        chain = rsvp_chain()
        trace = TntProber(chain.engine, seed=1).trace(
            chain.vp.router_id, chain.target
        )
        assert ArestDetector().detect(trace, {}) == []

    def test_truth_transport_not_sr(self):
        from repro.probing.records import truth_transport_is_sr

        chain = rsvp_chain()
        trace = TntProber(chain.engine, seed=1).trace(
            chain.vp.router_id, chain.target
        )
        for i, hop in enumerate(trace.hops):
            if hop.truth_planes:
                assert not truth_transport_is_sr(trace, i)
