"""Fig. 14 -- SNMPv3 vs. TTL-based fingerprinting shares.

The paper: ~45% of hops identified at all; of those, 88% via TTL
signatures and 12% via SNMPv3.
"""

from repro.analysis.fingerprint_stats import (
    fingerprint_share_rows,
    overall_method_split,
)
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig14_fingerprint_share(benchmark, portfolio_results):
    rows = benchmark(lambda: fingerprint_share_rows(portfolio_results))
    table = [
        (
            f"AS#{r.as_id}",
            r.name,
            r.total_interfaces,
            f"{r.identified_share:.2f}",
            f"{r.ttl_share_of_identified:.2f}" if r.identified else "-",
        )
        for r in rows
    ]
    emit(
        format_table(
            ["AS", "Name", "Ifaces", "identified", "TTL share"],
            table,
            title="Fig. 14 -- fingerprint method split per AS",
        )
    )
    ttl_share, snmp_share = overall_method_split(rows)
    emit(
        f"overall: TTL={ttl_share:.1%} SNMPv3={snmp_share:.1%} "
        f"(paper: 88% / 12%)"
    )

    # Shape: TTL dominates overall; SNMPv3 is a clear minority but
    # present; the unfingerprintable ground-truth AS (#46) identifies
    # nothing inside its own AS (its transit side may).
    assert ttl_share > 0.6
    assert 0.0 < snmp_share < 0.4
    esnet = next(r for r in rows if r.as_id == 46)
    fingerprint_rich = next(r for r in rows if r.as_id == 31)
    assert fingerprint_rich.identified_share > esnet.identified_share
