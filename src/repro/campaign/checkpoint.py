"""JSON checkpointing for interrupted portfolio runs.

The checkpoint persists, per completed AS, exactly what the paper's
campaign would have banked on disk: the collected trace dataset and the
interface fingerprints (plus the fault/retry tallies incurred while
collecting them).  Everything downstream -- bdrmapIT annotation, the
AReST pipeline, alias resolution, ground truth -- is deterministic given
that data and the campaign seed, so resuming re-derives the analysis
without re-firing a single probe and produces a bit-identical report.

The file embeds a config signature (seed, probing knobs, fault plan,
retry policy); resuming under a different configuration raises
:class:`CheckpointMismatchError` rather than silently mixing campaigns.

Since version 2 the on-disk format is JSONL: a header line (kind,
version, config) followed by one line per banked AS.  Banking an AS
appends a single line instead of rewriting the whole file, and a run
killed mid-append at worst truncates the final line -- :meth:`load`
salvages every intact line before the damage, logs what it discarded,
and compacts the file, so ``--resume`` keeps working after a crash or
a partially-synced copy.  Version-1 checkpoints (one JSON object) are
still read transparently.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.dataset import TraceDataset, _trace_from_json, _trace_to_json
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.netsim.addressing import IPv4Address
from repro.netsim.faults import FaultCounters
from repro.netsim.vendors import Vendor
from repro.util.retry import RetryAccounting

_KIND = "arest-checkpoint"
_VERSION = 2

logger = logging.getLogger(__name__)


class CheckpointMismatchError(ValueError):
    """The checkpoint was written by a differently-configured campaign."""


@dataclass(slots=True)
class CheckpointEntry:
    """Banked measurement data for one completed AS."""

    dataset: TraceDataset
    fingerprints: dict[IPv4Address, Fingerprint]
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    retry_accounting: RetryAccounting = field(default_factory=RetryAccounting)


def _fingerprint_to_json(address: IPv4Address, fp: Fingerprint) -> dict:
    return {
        "addr": str(address),
        "method": fp.method.value,
        "vendor": fp.exact_vendor.value if fp.exact_vendor else None,
        "class": sorted(v.value for v in fp.vendor_class),
    }


def _fingerprint_from_json(record: dict) -> tuple[IPv4Address, Fingerprint]:
    address = IPv4Address.from_string(record["addr"])
    fp = Fingerprint(
        method=FingerprintMethod(record["method"]),
        exact_vendor=Vendor(record["vendor"]) if record["vendor"] else None,
        vendor_class=frozenset(Vendor(v) for v in record["class"]),
    )
    return address, fp


def _dataset_to_json(dataset: TraceDataset) -> dict:
    return {
        "target_asn": dataset.target_asn,
        "metadata": dataset.metadata,
        "traces": [_trace_to_json(t) for t in dataset],
    }


def _dataset_from_json(record: dict) -> TraceDataset:
    dataset = TraceDataset(
        target_asn=int(record["target_asn"]),
        metadata=dict(record.get("metadata", {})),
    )
    for trace in record.get("traces", ()):
        dataset.add(_trace_from_json(trace))
    return dataset


def _entry_to_json(entry: CheckpointEntry) -> dict:
    return {
        "dataset": _dataset_to_json(entry.dataset),
        "fingerprints": [
            _fingerprint_to_json(addr, fp)
            for addr, fp in sorted(
                entry.fingerprints.items(), key=lambda item: str(item[0])
            )
        ],
        "fault_counters": entry.fault_counters.as_dict(),
        "retry_accounting": entry.retry_accounting.as_dict(),
    }


def _entry_from_json(record: dict) -> CheckpointEntry:
    return CheckpointEntry(
        dataset=_dataset_from_json(record["dataset"]),
        fingerprints=dict(
            _fingerprint_from_json(fp) for fp in record.get("fingerprints", ())
        ),
        fault_counters=FaultCounters.from_dict(
            record.get("fault_counters", {})
        ),
        retry_accounting=RetryAccounting.from_dict(
            record.get("retry_accounting", {})
        ),
    )


class CampaignCheckpoint:
    """One checkpoint file bound to one campaign configuration."""

    def __init__(self, path: str | Path, config: dict) -> None:
        self._path = Path(path)
        self._config = config
        self._entries: dict[int, CheckpointEntry] = {}
        #: does the on-disk file hold exactly ``_entries`` in v2 form?
        self._synced = False

    @property
    def path(self) -> Path:
        """Location of the checkpoint file."""
        return self._path

    @property
    def completed_as_ids(self) -> list[int]:
        """ASes banked so far, in completion order."""
        return list(self._entries)

    def load(self) -> dict[int, CheckpointEntry]:
        """Read banked entries; missing file means a fresh start.

        A truncated or garbled tail (crash mid-append, partial copy)
        does not lose the campaign: every intact line before the first
        damaged one is salvaged, the discard is logged, and the file is
        compacted to the salvaged prefix so the next append starts from
        a clean state.

        Raises :class:`CheckpointMismatchError` when the file was
        written under a different campaign configuration.
        """
        if not self._path.exists():
            return {}
        with self._path.open("r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        header_line = lines[0] if lines else ""
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise ValueError(
                f"not an AReST checkpoint (unparseable header): "
                f"{self._path}"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != _KIND:
            raise ValueError(f"not an AReST checkpoint: {self._path}")
        if header.get("config") != self._config:
            raise CheckpointMismatchError(
                f"checkpoint {self._path} was written by a different "
                f"campaign configuration; delete it or rerun with the "
                f"original settings"
            )
        if "completed" in header:
            # Legacy v1: the whole file is one JSON object.
            self._entries = {
                int(as_id): _entry_from_json(entry)
                for as_id, entry in header.get("completed", {}).items()
            }
            self._flush()  # upgrade to v2 on the spot
            return dict(self._entries)
        self._entries = {}
        salvaged = damaged = 0
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                as_id = int(record["as_id"])
                entry = _entry_from_json(record["entry"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # First damaged line: everything after it is suspect
                # too -- salvage the intact prefix and drop the rest.
                damaged = len(lines) - lineno + 1
                logger.warning(
                    "checkpoint %s: line %d is damaged; salvaged %d "
                    "banked AS(es), discarding %d trailing line(s)",
                    self._path, lineno, salvaged, damaged,
                )
                break
            self._entries[as_id] = entry
            salvaged += 1
        if damaged:
            self._flush()  # compact away the damaged tail
        else:
            self._synced = True
        return dict(self._entries)

    def record(self, as_id: int, entry: CheckpointEntry) -> None:
        """Bank one completed AS.

        Appends one line when the file is already in sync (the common
        mid-campaign case); otherwise atomically rewrites the whole
        file first.
        """
        replacing = self._synced and as_id in self._entries
        self._entries[as_id] = entry
        if self._synced and not replacing:
            line = json.dumps({"as_id": as_id, "entry": _entry_to_json(entry)})
            with self._path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        else:
            self._flush()

    def _flush(self) -> None:
        """Atomically rewrite header + one line per banked AS."""
        header = {"kind": _KIND, "version": _VERSION, "config": self._config}
        tmp = self._path.with_suffix(self._path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for as_id, entry in self._entries.items():
                record = {"as_id": as_id, "entry": _entry_to_json(entry)}
                fh.write(json.dumps(record) + "\n")
        os.replace(tmp, self._path)
        self._synced = True
