"""Deterministic pseudo-randomness.

Every stochastic decision in the simulator and the campaign hashes a
stable key instead of consuming a shared RNG stream, so adding or
reordering computations never perturbs unrelated results.  Experiments
are reproducible bit-for-bit across runs and machines.
"""

from __future__ import annotations

import hashlib
import random


def int_hash(*parts: object) -> int:
    """A stable 64-bit hash of the stringified parts."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def unit_hash(*parts: object) -> float:
    """A stable uniform [0, 1) draw keyed by the parts."""
    return int_hash(*parts) / 2**64


class DeterministicRng(random.Random):
    """A :class:`random.Random` seeded from a stable key.

    Use one per logical component (e.g. per-AS topology generation) so
    streams stay independent.
    """

    def __init__(self, *key: object) -> None:
        super().__init__(int_hash("rng", *key))
