"""Deterministic pseudo-randomness.

Every stochastic decision in the simulator and the campaign hashes a
stable key instead of consuming a shared RNG stream, so adding or
reordering computations never perturbs unrelated results.  Experiments
are reproducible bit-for-bit across runs and machines.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache


@lru_cache(maxsize=1 << 16)
def _digest64(text: str) -> int:
    """The first 64 bits of SHA-256(text), memoized.

    Fault draws and flow derivations re-hash the same small key set
    millions of times per campaign; caching the digest preserves
    bit-identical outputs while skipping the SHA-256 on repeats.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def int_hash(*parts: object) -> int:
    """A stable 64-bit hash of the stringified parts."""
    return _digest64("\x1f".join(map(str, parts)))


def unit_hash(*parts: object) -> float:
    """A stable uniform [0, 1) draw keyed by the parts."""
    return int_hash(*parts) / 2**64


class DeterministicRng(random.Random):
    """A :class:`random.Random` seeded from a stable key.

    Use one per logical component (e.g. per-AS topology generation) so
    streams stay independent.
    """

    def __init__(self, *key: object) -> None:
        super().__init__(int_hash("rng", *key))
