"""Tests for the per-AS AReST pipeline over simulated campaigns."""

import pytest

from repro.core.flags import Flag
from repro.core.pipeline import ArestPipeline
from repro.fingerprint.records import Fingerprint
from repro.netsim.vendors import Vendor
from repro.probing.tnt import TntProber
from repro.probing.tunnels import TunnelType

from tests.conftest import TARGET_ASN, ChainNetwork, make_hop, make_trace


def run_chain(chain: ChainNetwork, fingerprints=None, sink=None):
    prober = TntProber(chain.engine, seed=5)
    traces = [prober.trace(chain.vp.router_id, chain.target)]
    pipeline = ArestPipeline()
    return pipeline.analyze_as(
        TARGET_ASN, traces, fingerprints or {}, segment_sink=sink
    )


class TestAnalyzeAs:
    def test_full_sr_chain(self, sr_chain):
        analysis = run_chain(sr_chain)
        assert analysis.traces_in_as == 1
        assert analysis.flag_counts()[Flag.CO] == 1
        assert analysis.has_sr_evidence()
        assert analysis.strong_share() == 1.0
        assert analysis.traces_hitting_sr == 1
        assert analysis.tunnel_types[TunnelType.EXPLICIT] == 1

    def test_fingerprints_upgrade_to_cvr(self, sr_chain):
        fingerprints = {}
        tr = TntProber(sr_chain.engine, seed=5).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        for hop in tr.labeled_hops():
            fingerprints[hop.address] = Fingerprint.from_snmp(Vendor.CISCO)
        analysis = run_chain(sr_chain, fingerprints)
        assert analysis.flag_counts()[Flag.CVR] == 1
        assert analysis.flag_counts()[Flag.CO] == 0

    def test_ldp_chain_has_no_sr_evidence(self, ldp_chain):
        analysis = run_chain(ldp_chain)
        assert not analysis.has_sr_evidence(strong_only=False)
        assert analysis.traces_hitting_mpls == 1
        assert analysis.traces_hitting_sr == 0

    def test_traces_outside_as_ignored(self, sr_chain):
        pipeline = ArestPipeline()
        foreign = make_trace([make_hop(1, "10.9.9.1")])
        analysis = pipeline.analyze_as(TARGET_ASN, [foreign], {})
        assert analysis.traces_total == 1
        assert analysis.traces_in_as == 0

    def test_segment_sink_collects(self, sr_chain):
        sink = []
        run_chain(sr_chain, sink=sink)
        assert len(sink) == 1
        trace, segments = sink[0]
        assert segments

    def test_distinct_segments_deduplicated(self, sr_chain):
        prober = TntProber(sr_chain.engine, seed=5)
        traces = [
            prober.trace(sr_chain.vp.router_id, sr_chain.target)
            for _ in range(4)
        ]
        analysis = ArestPipeline().analyze_as(TARGET_ASN, traces, {})
        # the same segment observed four times counts once
        assert analysis.flag_counts()[Flag.CO] == 1
        assert len(analysis.segments) == 4

    def test_custom_asn_lookup(self, sr_chain):
        prober = TntProber(sr_chain.engine, seed=5)
        traces = [prober.trace(sr_chain.vp.router_id, sr_chain.target)]
        analysis = ArestPipeline().analyze_as(
            TARGET_ASN, traces, {}, asn_of=lambda hop: None
        )
        assert analysis.traces_in_as == 0


class TestProportions:
    def test_flag_proportions_sum_to_one(self, sr_chain):
        analysis = run_chain(sr_chain)
        proportions = analysis.flag_proportions()
        assert proportions
        assert sum(proportions.values()) == pytest.approx(1.0)

    def test_empty_analysis_is_sane(self):
        pipeline = ArestPipeline()
        analysis = pipeline.analyze_as(TARGET_ASN, [], {})
        assert analysis.flag_proportions() == {}
        assert analysis.strong_share() == 0.0
        assert analysis.explicit_tunnel_share() == 0.0
        assert analysis.interworking_share() == 0.0

    def test_interface_sets_disjoint(self, sr_chain):
        analysis = run_chain(sr_chain)
        assert not analysis.sr_addresses & analysis.mpls_addresses
        assert not analysis.sr_addresses & analysis.ip_addresses
