"""Tests for Table 1 range matching under both fingerprint grades."""

from repro.core.vendor_ranges import (
    TABLE1_RANGES,
    TTL_ACTIONABLE_CLASS,
    known_sr_ranges,
    label_in_vendor_range,
    ranges_for_fingerprint,
)
from repro.fingerprint.records import Fingerprint
from repro.netsim.vendors import Vendor


class TestSnmpGrade:
    def test_cisco_ranges(self):
        fp = Fingerprint.from_snmp(Vendor.CISCO)
        ranges = ranges_for_fingerprint(fp)
        bounds = {(r.low, r.high) for r in ranges}
        assert (16_000, 23_999) in bounds  # SRGB
        assert (15_000, 15_999) in bounds  # SRLB

    def test_arista_ranges(self):
        fp = Fingerprint.from_snmp(Vendor.ARISTA)
        ranges = ranges_for_fingerprint(fp)
        assert any(r.low == 900_000 for r in ranges)
        assert any(r.low == 100_000 for r in ranges)

    def test_juniper_contributes_nothing(self):
        # Table 1 publishes no Juniper defaults: AReST cannot range-match.
        fp = Fingerprint.from_snmp(Vendor.JUNIPER)
        assert ranges_for_fingerprint(fp) == ()

    def test_label_matching(self):
        cisco = Fingerprint.from_snmp(Vendor.CISCO)
        assert label_in_vendor_range(16_005, cisco)
        assert label_in_vendor_range(15_500, cisco)  # SRLB
        assert not label_in_vendor_range(50_000, cisco)

    def test_huawei_wider_srgb(self):
        huawei = Fingerprint.from_snmp(Vendor.HUAWEI)
        assert label_in_vendor_range(40_000, huawei)
        cisco = Fingerprint.from_snmp(Vendor.CISCO)
        assert not label_in_vendor_range(40_000, cisco)


class TestTtlGrade:
    def test_cisco_huawei_class_uses_intersection(self):
        fp = Fingerprint.from_ttl(TTL_ACTIONABLE_CLASS)
        ranges = ranges_for_fingerprint(fp)
        assert len(ranges) == 1
        assert (ranges[0].low, ranges[0].high) == (16_000, 23_999)

    def test_other_classes_not_actionable(self):
        fp = Fingerprint.from_ttl(frozenset({Vendor.JUNIPER}))
        assert ranges_for_fingerprint(fp) == ()
        fp = Fingerprint.from_ttl(
            frozenset({Vendor.ARISTA, Vendor.LINUX, Vendor.MIKROTIK})
        )
        assert ranges_for_fingerprint(fp) == ()

    def test_intersection_excludes_huawei_only_labels(self):
        fp = Fingerprint.from_ttl(TTL_ACTIONABLE_CLASS)
        assert label_in_vendor_range(20_000, fp)
        assert not label_in_vendor_range(30_000, fp)  # Huawei-only SRGB


class TestNoFingerprint:
    def test_no_ranges(self):
        assert ranges_for_fingerprint(Fingerprint.none()) == ()
        assert not label_in_vendor_range(16_005, Fingerprint.none())


class TestKnownRanges:
    def test_covers_all_table1_entries(self):
        expected = sum(len(entries) for entries in TABLE1_RANGES.values())
        assert len(known_sr_ranges()) == expected

    def test_all_valid(self):
        for r in known_sr_ranges():
            assert 0 <= r.low <= r.high < 2**20
