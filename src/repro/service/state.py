"""Incremental, crash-safe state for the streaming detection service.

Two pieces compose the service's robustness story:

:class:`SegmentAggregate`
    The *order-independent projection* of everything the pipeline has
    seen: counters, distinct-segment key sets, anomaly tallies,
    histograms.  Every field merges commutatively and associatively
    (set union, counter addition), and each trace's contribution is
    computed independently of every other trace, so **any** arrival
    order, batch split, snapshot boundary or crash-recovery replay of
    the same trace set folds to the same aggregate -- the foundation of
    the service's streaming ≡ batch byte-identity contract.

:class:`ServiceState`
    The durable store, built on the checkpoint-v3 JSONL idiom
    (:mod:`repro.util.journal` + :mod:`repro.util.atomicio`):

    - ``ingest.jsonl`` -- header line (kind/version/config signature)
      then one line per *accepted* trace, appended with
      write+flush+fsync **before** the service acknowledges the trace.
      A ``kill -9`` mid-append at worst tears the final line -- a trace
      that was therefore never acknowledged -- so recovery never loses
      an accepted trace and never resurrects an unacknowledged one.
    - ``snapshot.json`` -- an atomic whole-file snapshot of the
      aggregate as of journal sequence N.  Periodic compaction writes
      the snapshot first, then atomically rewrites the journal without
      the lines the snapshot covers; recovery filters replayed lines by
      ``seq > snapshot.seq``, so a crash *between* the two writes
      double-counts nothing.

Recovery is therefore: load snapshot (if any), salvage the journal's
intact prefix, replay the ``seq > snapshot.seq`` tail through the very
same per-trace analysis used live, and merge.  The result is
byte-identical to a run that never crashed.
"""

from __future__ import annotations

import json
import logging
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.dataset import trace_from_json, trace_to_json
from repro.core.flags import Flag, STRONG_FLAGS
from repro.core.pipeline import ArestPipeline
from repro.probing.records import Trace
from repro.probing.sanitize import AnomalyKind
from repro.service.wire import canonical_json
from repro.util.atomicio import atomic_write_text, durable_append
from repro.util.journal import (
    append_json_line,
    rewrite_json_lines,
    salvage_decode,
)

logger = logging.getLogger(__name__)

#: canonical filenames inside a service state directory
INGEST_FILENAME = "ingest.jsonl"
SNAPSHOT_FILENAME = "snapshot.json"

_JOURNAL_KIND = "arest-ingest"
_SNAPSHOT_KIND = "arest-ingest-snapshot"
_VERSION = 1

#: the three hop-area buckets the aggregate tracks
_AREAS = ("sr", "mpls", "ip")


class StateMismatchError(ValueError):
    """The state dir was written by a differently-configured service."""


# ---------------------------------------------------------------------------
# aggregate


def _counter_from(record: dict, cast=int) -> Counter:
    return Counter({str(k): cast(v) for k, v in record.items()})


def _int_counter_from(record: dict) -> Counter:
    return Counter({int(k): int(v) for k, v in record.items()})


@dataclass(slots=True)
class SegmentAggregate:
    """Order-independent projection of the analyzed trace stream."""

    traces_collected: int = 0
    traces_quarantined: int = 0
    traces_in_as: int = 0
    #: anomaly tallies by kind value (sanitizer + poison quarantines)
    anomaly_counts: Counter = field(default_factory=Counter)
    #: flag name -> set of (addresses, top labels) distinct-segment keys
    distinct: dict[str, set] = field(
        default_factory=lambda: {flag.name: set() for flag in Flag}
    )
    #: flag name -> trace-level segment observations (non-distinct)
    observations: Counter = field(default_factory=Counter)
    consecutive_runs: int = 0
    suffix_matched_runs: int = 0
    stack_depths_strong: Counter = field(default_factory=Counter)
    stack_depths_other: Counter = field(default_factory=Counter)
    #: area -> traces touching at least one hop of that area
    traces_hitting: Counter = field(default_factory=Counter)
    #: area -> distinct interface addresses
    addresses: dict[str, set] = field(
        default_factory=lambda: {area: set() for area in _AREAS}
    )
    tunnel_types: Counter = field(default_factory=Counter)
    traces_with_explicit: int = 0
    interworking_modes: Counter = field(default_factory=Counter)
    sr_cloud_sizes: Counter = field(default_factory=Counter)
    ldp_cloud_sizes: Counter = field(default_factory=Counter)

    # -- invariants ----------------------------------------------------------

    @property
    def traces_analyzed(self) -> int:
        """Traces that reached detection (collected minus quarantined)."""
        return self.traces_collected - self.traces_quarantined

    def check_invariant(self) -> None:
        """The continuous reconciliation invariant.

        ``traces_analyzed + traces_quarantined == traces_collected``
        holds by construction (analyzed is derived); what can actually
        drift is the bound between the parts, so that is what is
        asserted -- after every merge.
        """
        if not (0 <= self.traces_quarantined <= self.traces_collected):
            raise AssertionError(
                f"invariant violated: quarantined="
                f"{self.traces_quarantined} collected="
                f"{self.traces_collected}"
            )
        if not (0 <= self.traces_in_as <= self.traces_analyzed):
            raise AssertionError(
                f"invariant violated: in_as={self.traces_in_as} "
                f"analyzed={self.traces_analyzed}"
            )

    # -- folding -------------------------------------------------------------

    def merge(self, other: "SegmentAggregate") -> None:
        """Fold ``other`` in (commutative + associative by field type)."""
        self.traces_collected += other.traces_collected
        self.traces_quarantined += other.traces_quarantined
        self.traces_in_as += other.traces_in_as
        self.anomaly_counts.update(other.anomaly_counts)
        for flag, keys in other.distinct.items():
            self.distinct.setdefault(flag, set()).update(keys)
        self.observations.update(other.observations)
        self.consecutive_runs += other.consecutive_runs
        self.suffix_matched_runs += other.suffix_matched_runs
        self.stack_depths_strong.update(other.stack_depths_strong)
        self.stack_depths_other.update(other.stack_depths_other)
        self.traces_hitting.update(other.traces_hitting)
        for area, addresses in other.addresses.items():
            self.addresses.setdefault(area, set()).update(addresses)
        self.tunnel_types.update(other.tunnel_types)
        self.traces_with_explicit += other.traces_with_explicit
        self.interworking_modes.update(other.interworking_modes)
        self.sr_cloud_sizes.update(other.sr_cloud_sizes)
        self.ldp_cloud_sizes.update(other.ldp_cloud_sizes)
        self.check_invariant()

    @classmethod
    def from_analysis(cls, analysis) -> "SegmentAggregate":
        """Project an :class:`~repro.core.pipeline.AsAnalysis`."""
        aggregate = cls(
            traces_collected=analysis.traces_total,
            traces_quarantined=analysis.traces_quarantined,
            traces_in_as=analysis.traces_in_as,
            anomaly_counts=Counter(analysis.anomaly_counts()),
            observations=Counter(
                segment.flag.name for segment in analysis.segments
            ),
            consecutive_runs=analysis.consecutive_runs,
            suffix_matched_runs=analysis.suffix_matched_runs,
            stack_depths_strong=Counter(analysis.stack_depths_strong),
            stack_depths_other=Counter(analysis.stack_depths_other),
            traces_hitting=Counter(
                {
                    "sr": analysis.traces_hitting_sr,
                    "mpls": analysis.traces_hitting_mpls,
                    "ip": analysis.traces_hitting_ip,
                }
            ),
            tunnel_types=Counter(
                {t.name: n for t, n in analysis.tunnel_types.items()}
            ),
            traces_with_explicit=analysis.traces_with_explicit,
            interworking_modes=Counter(
                {m.name: n for m, n in analysis.interworking_modes.items()}
            ),
            sr_cloud_sizes=Counter(analysis.sr_cloud_sizes),
            ldp_cloud_sizes=Counter(analysis.ldp_cloud_sizes),
        )
        for flag, keys in analysis.distinct_segments.items():
            aggregate.distinct[flag.name] = {
                (
                    tuple(str(address) for address in addresses),
                    tuple(int(label) for label in labels),
                )
                for _flag, addresses, labels in keys
            }
        aggregate.addresses = {
            "sr": {str(a) for a in analysis.sr_addresses},
            "mpls": {str(a) for a in analysis.mpls_addresses},
            "ip": {str(a) for a in analysis.ip_addresses},
        }
        aggregate.check_invariant()
        return aggregate

    @classmethod
    def poison(cls) -> "SegmentAggregate":
        """The delta for one trace whose detection stage failed.

        The trace is counted as collected *and* quarantined -- through
        the same anomaly bookkeeping a structurally-corrupt trace uses
        -- so the reconciliation invariant keeps holding and the worker
        that hit the poison input carries on.
        """
        return cls(
            traces_collected=1,
            traces_quarantined=1,
            anomaly_counts=Counter(
                {AnomalyKind.POISON_TRACE.value: 1}
            ),
        )

    # -- snapshot codec ------------------------------------------------------

    def as_state_dict(self) -> dict:
        """JSON-able snapshot of every field (deterministically ordered)."""
        return {
            "traces_collected": self.traces_collected,
            "traces_quarantined": self.traces_quarantined,
            "traces_in_as": self.traces_in_as,
            "anomaly_counts": dict(sorted(self.anomaly_counts.items())),
            "distinct": {
                flag: sorted(
                    [list(addresses), list(labels)]
                    for addresses, labels in keys
                )
                for flag, keys in sorted(self.distinct.items())
            },
            "observations": dict(sorted(self.observations.items())),
            "consecutive_runs": self.consecutive_runs,
            "suffix_matched_runs": self.suffix_matched_runs,
            "stack_depths_strong": {
                str(k): v
                for k, v in sorted(self.stack_depths_strong.items())
            },
            "stack_depths_other": {
                str(k): v
                for k, v in sorted(self.stack_depths_other.items())
            },
            "traces_hitting": dict(sorted(self.traces_hitting.items())),
            "addresses": {
                area: sorted(addresses)
                for area, addresses in sorted(self.addresses.items())
            },
            "tunnel_types": dict(sorted(self.tunnel_types.items())),
            "traces_with_explicit": self.traces_with_explicit,
            "interworking_modes": dict(
                sorted(self.interworking_modes.items())
            ),
            "sr_cloud_sizes": {
                str(k): v for k, v in sorted(self.sr_cloud_sizes.items())
            },
            "ldp_cloud_sizes": {
                str(k): v for k, v in sorted(self.ldp_cloud_sizes.items())
            },
        }

    @classmethod
    def from_state_dict(cls, record: dict) -> "SegmentAggregate":
        """Inverse of :meth:`as_state_dict`."""
        aggregate = cls(
            traces_collected=int(record["traces_collected"]),
            traces_quarantined=int(record["traces_quarantined"]),
            traces_in_as=int(record["traces_in_as"]),
            anomaly_counts=_counter_from(record["anomaly_counts"]),
            observations=_counter_from(record["observations"]),
            consecutive_runs=int(record["consecutive_runs"]),
            suffix_matched_runs=int(record["suffix_matched_runs"]),
            stack_depths_strong=_int_counter_from(
                record["stack_depths_strong"]
            ),
            stack_depths_other=_int_counter_from(
                record["stack_depths_other"]
            ),
            traces_hitting=_counter_from(record["traces_hitting"]),
            tunnel_types=_counter_from(record["tunnel_types"]),
            traces_with_explicit=int(record["traces_with_explicit"]),
            interworking_modes=_counter_from(record["interworking_modes"]),
            sr_cloud_sizes=_int_counter_from(record["sr_cloud_sizes"]),
            ldp_cloud_sizes=_int_counter_from(record["ldp_cloud_sizes"]),
        )
        aggregate.distinct = {flag.name: set() for flag in Flag}
        for flag, keys in record["distinct"].items():
            aggregate.distinct[str(flag)] = {
                (tuple(addresses), tuple(int(l) for l in labels))
                for addresses, labels in keys
            }
        aggregate.addresses = {
            str(area): set(addresses)
            for area, addresses in record["addresses"].items()
        }
        aggregate.check_invariant()
        return aggregate

    # -- canonical query surfaces -------------------------------------------

    def segments_dict(self, asn: int | None = None) -> dict:
        """The ``GET /segments`` document (order-independent fields only)."""
        flags = {}
        for flag in Flag:
            keys = self.distinct.get(flag.name, set())
            flags[flag.name] = {
                "distinct": len(keys),
                "observations": int(self.observations.get(flag.name, 0)),
                "segments": [
                    {"addresses": list(addresses), "labels": list(labels)}
                    for addresses, labels in sorted(keys)
                ],
            }
        strong = sum(
            len(self.distinct.get(flag.name, ())) for flag in STRONG_FLAGS
        )
        total = sum(len(keys) for keys in self.distinct.values())
        return {
            "kind": "arest-segments",
            "version": _VERSION,
            "asn": asn,
            "traces": {
                "collected": self.traces_collected,
                "analyzed": self.traces_analyzed,
                "quarantined": self.traces_quarantined,
                "in_as": self.traces_in_as,
            },
            "anomalies": dict(sorted(self.anomaly_counts.items())),
            "flags": flags,
            "total_distinct": total,
            "strong_distinct": strong,
        }

    def segments_json(self, asn: int | None = None) -> bytes:
        """Canonical bytes of :meth:`segments_dict`."""
        return canonical_json(self.segments_dict(asn))

    def report_dict(self, asn: int | None = None) -> dict:
        """The ``GET /report`` analysis section: segments + area/tunnel
        aggregates the markdown report would show for a batch run."""
        report = self.segments_dict(asn)
        report["kind"] = "arest-report"
        report["areas"] = {
            area: {
                "addresses": len(self.addresses.get(area, ())),
                "traces_hitting": int(self.traces_hitting.get(area, 0)),
            }
            for area in _AREAS
        }
        report["tunnels"] = {
            "types": dict(sorted(self.tunnel_types.items())),
            "traces_with_explicit": self.traces_with_explicit,
        }
        report["interworking"] = {
            "modes": dict(sorted(self.interworking_modes.items())),
            "sr_cloud_sizes": {
                str(k): v for k, v in sorted(self.sr_cloud_sizes.items())
            },
            "ldp_cloud_sizes": {
                str(k): v for k, v in sorted(self.ldp_cloud_sizes.items())
            },
        }
        report["stack_depths"] = {
            "strong": {
                str(k): v
                for k, v in sorted(self.stack_depths_strong.items())
            },
            "other": {
                str(k): v
                for k, v in sorted(self.stack_depths_other.items())
            },
        }
        report["runs"] = {
            "consecutive": self.consecutive_runs,
            "suffix_matched": self.suffix_matched_runs,
        }
        return report


# ---------------------------------------------------------------------------
# per-trace analysis (the pure function workers run, possibly in a thread)


def analyze_trace(
    trace: Trace,
    *,
    asn: int | None = None,
    pipeline: ArestPipeline | None = None,
) -> SegmentAggregate:
    """Project one trace through sanitize → detect into an aggregate delta.

    Pure with respect to shared state: the accumulator is fresh per
    call, so a poisoned or timed-out analysis can be abandoned without
    ever having touched the service's live aggregate.
    """
    pipeline = pipeline if pipeline is not None else ArestPipeline()
    accumulator = pipeline.accumulator(asn, {})
    accumulator.feed(trace)
    return SegmentAggregate.from_analysis(accumulator.finish())


def batch_aggregate(
    traces,
    *,
    asn: int | None = None,
    pipeline: ArestPipeline | None = None,
) -> SegmentAggregate:
    """The batch reference: fold a whole trace set into one aggregate.

    This is the exact per-trace fold the streaming service performs --
    so ``arest detect --segments-json`` and ``GET /segments`` are
    byte-identical by construction, and the Hypothesis equivalence
    property guards the construction.
    """
    pipeline = pipeline if pipeline is not None else ArestPipeline()
    total = SegmentAggregate()
    for trace in traces:
        total.merge(analyze_trace(trace, asn=asn, pipeline=pipeline))
    return total


# ---------------------------------------------------------------------------
# durable store


@dataclass(slots=True)
class RecoveryInfo:
    """What :meth:`ServiceState.recover` found on disk."""

    snapshot_seq: int = 0
    replayed: int = 0
    damaged_lines: int = 0

    def as_dict(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "damaged_lines": self.damaged_lines,
        }


class ServiceState:
    """Durable aggregate + ingest journal for one service instance."""

    def __init__(
        self,
        directory: str | Path,
        *,
        asn: int | None = None,
        snapshot_every: int = 256,
        pipeline: ArestPipeline | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.asn = asn
        self.snapshot_every = snapshot_every
        self.pipeline = pipeline if pipeline is not None else ArestPipeline()
        self.aggregate = SegmentAggregate()
        self._journal = self.directory / INGEST_FILENAME
        self._snapshot = self.directory / SNAPSHOT_FILENAME
        self._config = {"asn": asn, "version": _VERSION}
        #: highest sequence number handed out (next append gets +1)
        self._last_seq = 0
        #: every seq <= watermark has been folded into the aggregate
        self._fed_watermark = 0
        #: seqs folded ahead of the watermark (multi-worker reordering)
        self._fed_ahead: set[int] = set()
        #: seq the current snapshot covers
        self._snapshot_seq = 0
        #: journal lines not yet compacted away
        self._journal_lines = 0
        self._journal_exists = False

    # -- recovery ------------------------------------------------------------

    def recover(self) -> RecoveryInfo:
        """Rebuild the aggregate from snapshot + journal tail.

        Safe after a crash at any instant: the journal's intact prefix
        is salvaged (a torn final line was never acknowledged, so
        dropping it loses nothing accepted), lines the snapshot already
        covers are skipped by sequence number (so a crash between
        snapshot and journal truncation double-counts nothing), and the
        tail is replayed through the same per-trace analysis used live.
        """
        info = RecoveryInfo()
        snapshot = self._load_snapshot()
        if snapshot is not None:
            self.aggregate = SegmentAggregate.from_state_dict(
                snapshot["aggregate"]
            )
            self._snapshot_seq = int(snapshot["seq"])
            info.snapshot_seq = self._snapshot_seq
        entries, damaged = self._load_journal()
        info.damaged_lines = damaged
        keep: list[tuple[int, Trace]] = []
        max_seq = self._snapshot_seq
        for seq, trace in entries:
            max_seq = max(max_seq, seq)
            if seq > self._snapshot_seq:
                keep.append((seq, trace))
        for seq, trace in keep:
            self.aggregate.merge(
                analyze_trace(trace, asn=self.asn, pipeline=self.pipeline)
            )
            info.replayed += 1
        self._last_seq = max_seq
        self._fed_watermark = max_seq
        self._fed_ahead.clear()
        self._journal_lines = len(entries)
        if damaged:
            # compact the torn tail away so the next append starts clean
            self._rewrite_journal(keep)
        return info

    def _load_snapshot(self) -> dict | None:
        if not self._snapshot.exists():
            return None
        try:
            record = json.loads(self._snapshot.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            # atomic_write_text makes this near-impossible; treat a
            # garbled snapshot as absent and rebuild from the journal
            logger.warning(
                "snapshot %s is unreadable; rebuilding from the journal",
                self._snapshot,
            )
            return None
        if record.get("kind") != _SNAPSHOT_KIND:
            raise StateMismatchError(
                f"{self._snapshot} is not an AReST ingest snapshot"
            )
        if record.get("config") != self._config:
            raise StateMismatchError(
                f"state dir {self.directory} was written by a "
                f"differently-configured service; delete it or restart "
                f"with the original settings"
            )
        return record

    def _load_journal(self) -> tuple[list[tuple[int, Trace]], int]:
        if not self._journal.exists():
            return [], 0
        lines = self._journal.read_text(encoding="utf-8").splitlines()
        header_line = lines[0] if lines else ""
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise StateMismatchError(
                f"not an AReST ingest journal (unparseable header): "
                f"{self._journal}"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != _JOURNAL_KIND:
            raise StateMismatchError(
                f"not an AReST ingest journal: {self._journal}"
            )
        if header.get("config") != self._config:
            raise StateMismatchError(
                f"state dir {self.directory} was written by a "
                f"differently-configured service; delete it or restart "
                f"with the original settings"
            )
        self._journal_exists = True

        def decode(record: dict) -> tuple[int, Trace]:
            return int(record["seq"]), trace_from_json(record["trace"])

        entries, damaged = salvage_decode(
            lines[1:],
            decode,
            path=self._journal,
            label="ingest journal",
            noun="accepted trace(s)",
            logger=logger,
        )
        return entries, damaged

    # -- accept + ingest -----------------------------------------------------

    def accept(self, traces: list[Trace]) -> list[int]:
        """Durably journal a batch of traces; returns their seqs.

        One write + one fsync for the whole batch; callers acknowledge
        (202) only after this returns, which is what makes the
        zero-accepted-trace-loss guarantee hold under ``kill -9``.
        """
        if not self._journal_exists:
            self._rewrite_journal([])
        seqs: list[int] = []
        block = []
        for trace in traces:
            self._last_seq += 1
            seqs.append(self._last_seq)
            block.append(
                json.dumps(
                    {"seq": self._last_seq, "trace": trace_to_json(trace)}
                )
            )
        if block:
            durable_append(self._journal, "".join(l + "\n" for l in block))
            self._journal_lines += len(block)
        return seqs

    def ingest(self, seq: int, delta: SegmentAggregate) -> None:
        """Fold one analyzed trace's delta in and advance the watermark."""
        self.aggregate.merge(delta)
        if seq == self._fed_watermark + 1:
            self._fed_watermark = seq
            while self._fed_watermark + 1 in self._fed_ahead:
                self._fed_watermark += 1
                self._fed_ahead.remove(self._fed_watermark)
        else:
            self._fed_ahead.add(seq)

    @property
    def fed_watermark(self) -> int:
        """Highest seq below which every trace has been folded in."""
        return self._fed_watermark

    @property
    def compaction_due(self) -> bool:
        """Snapshot + truncate when enough contiguous traces were fed.

        Only when no trace is folded *ahead* of the watermark: the
        snapshot must cover exactly ``seq <= watermark`` or recovery
        would double-count the folded-ahead tail.
        """
        return (
            not self._fed_ahead
            and self._fed_watermark - self._snapshot_seq
            >= self.snapshot_every
        )

    def compact(self) -> None:
        """Snapshot the aggregate, then drop covered journal lines.

        Write order is the crash-safety argument: the snapshot (atomic
        replace) lands first; the journal rewrite (atomic replace)
        second.  A crash between them leaves covered lines in the
        journal, which recovery skips by sequence number.
        """
        if self._fed_ahead:
            raise RuntimeError(
                "cannot compact with traces folded ahead of the watermark"
            )
        upto = self._fed_watermark
        snapshot = {
            "kind": _SNAPSHOT_KIND,
            "version": _VERSION,
            "config": self._config,
            "seq": upto,
            "aggregate": self.aggregate.as_state_dict(),
        }
        atomic_write_text(
            self._snapshot, json.dumps(snapshot, sort_keys=True) + "\n"
        )
        self._snapshot_seq = upto
        entries, _ = self._load_journal()
        self._rewrite_journal(
            [(seq, trace) for seq, trace in entries if seq > upto]
        )

    def final_checkpoint(self) -> None:
        """The drain-time flush: snapshot everything fed so far."""
        if not self._fed_ahead:
            self.compact()

    def _rewrite_journal(self, entries: list[tuple[int, Trace]]) -> None:
        rewrite_json_lines(
            self._journal,
            {
                "kind": _JOURNAL_KIND,
                "version": _VERSION,
                "config": self._config,
            },
            (
                {"seq": seq, "trace": trace_to_json(trace)}
                for seq, trace in entries
            ),
        )
        self._journal_exists = True
        self._journal_lines = len(entries)
