"""Observability contract over the campaign engine.

Two halves, one invariant each way:

- telemetry must be *invisible* to results -- the report JSON and
  checkpoint bytes are byte-identical with telemetry on or off, for any
  execution plan;
- results must be *faithfully visible* in telemetry -- counter totals
  agree across serial, parallel and resumed runs of the same campaign,
  and a quarantined worker's post-mortem (last stage, stage timings)
  survives into the report, the checkpoint, and the markdown.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.analysis.markdown_report import render_markdown_report
from repro.campaign import CampaignRunner, ScaleCampaign
from repro.campaign.checkpoint import QuarantineStub
from repro.campaign.runner import result_counters
from repro.obs import (
    critical_path,
    load_manifest,
    load_timeline,
    summarize_telemetry,
    timeline_report_dict,
    trace_event_json,
)
from repro.topogen.synthetic import SyntheticPortfolio

AS_IDS = [27, 46]
KNOBS = dict(seed=1, vps_per_as=1, targets_per_as=4)

_fork_required = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for the supervised pool",
)


def _fingerprint(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


def _run(tmp_path, name, jobs=1, telemetry=False, resume=False):
    checkpoint = tmp_path / f"{name}.ckpt"
    telemetry_dir = tmp_path / f"{name}-telemetry" if telemetry else None
    report = CampaignRunner(**KNOBS).run_portfolio(
        as_ids=AS_IDS,
        checkpoint=checkpoint,
        resume=resume,
        jobs=jobs,
        timeout_per_as=120 if jobs > 1 else None,
        telemetry_dir=telemetry_dir,
    )
    return report, checkpoint, telemetry_dir


class TestTelemetryIsInvisibleToResults:
    def test_serial_report_and_checkpoint_bytes_identical(self, tmp_path):
        plain, plain_ckpt, _ = _run(tmp_path, "plain")
        telem, telem_ckpt, _ = _run(tmp_path, "telem", telemetry=True)
        assert _fingerprint(telem) == _fingerprint(plain)
        assert telem_ckpt.read_bytes() == plain_ckpt.read_bytes()

    @_fork_required
    def test_parallel_with_telemetry_matches_serial_without(self, tmp_path):
        plain, plain_ckpt, _ = _run(tmp_path, "plain")
        telem, telem_ckpt, _ = _run(
            tmp_path, "telem", jobs=2, telemetry=True
        )
        assert _fingerprint(telem) == _fingerprint(plain)
        assert telem_ckpt.read_bytes() == plain_ckpt.read_bytes()


class TestCounterTotalsAreExecutionPlanIndependent:
    def test_serial_vs_resumed_totals(self, tmp_path):
        _, ckpt, fresh_dir = _run(tmp_path, "fresh", telemetry=True)
        # resume from the fully-banked checkpoint: every AS rehydrates
        resumed_dir = tmp_path / "resumed-telemetry"
        resumed = CampaignRunner(**KNOBS).run_portfolio(
            as_ids=AS_IDS,
            checkpoint=ckpt,
            resume=True,
            telemetry_dir=resumed_dir,
        )
        assert sorted(resumed.resumed_as_ids) == sorted(AS_IDS)
        fresh_totals = summarize_telemetry(fresh_dir).totals
        resumed_totals = summarize_telemetry(resumed_dir).totals
        assert fresh_totals == resumed_totals
        assert fresh_totals["traces_collected"] > 0

    @_fork_required
    def test_serial_vs_parallel_totals(self, tmp_path):
        _, _, serial_dir = _run(tmp_path, "serial", telemetry=True)
        _, _, parallel_dir = _run(
            tmp_path, "parallel", jobs=2, telemetry=True
        )
        assert (
            summarize_telemetry(serial_dir).totals
            == summarize_telemetry(parallel_dir).totals
        )


class TestTelemetryArtifacts:
    def test_manifest_and_stream_cover_the_run(self, tmp_path):
        _, _, telemetry_dir = _run(tmp_path, "run", telemetry=True)
        manifest = load_manifest(telemetry_dir)
        assert manifest["exit_status"] == "ok"
        assert manifest["command"] == "run_portfolio"
        assert manifest["as_ids"] == AS_IDS
        assert manifest["config"]["seed"] == KNOBS["seed"]
        summary = summarize_telemetry(telemetry_dir)
        assert summary.as_scopes() == sorted(AS_IDS)
        # every pipeline stage shows up, hot-loop stages included
        for stage in ("topology", "probe", "fingerprint", "analyze",
                      "sanitize", "detect"):
            assert stage in summary.stages()
        # each AS flushed a complete batch; so did the portfolio scope
        assert summary.flushed_scopes >= {*AS_IDS, "portfolio"}
        assert (telemetry_dir / "metrics.prom").exists()

    def test_counters_match_the_result_objects(self, tmp_path):
        report, _, telemetry_dir = _run(tmp_path, "run", telemetry=True)
        summary = summarize_telemetry(telemetry_dir)
        for as_id in AS_IDS:
            expected = result_counters(report[as_id])
            recorded = summary.counters[as_id]
            assert {k: v for k, v in recorded.items() if k in expected} == (
                expected
            )

    def test_run_as_session_and_error_manifest(self, tmp_path):
        runner = CampaignRunner(**KNOBS)
        ok_dir = tmp_path / "ok"
        runner.run_as(46, telemetry_dir=ok_dir)
        manifest = load_manifest(ok_dir)
        assert manifest["command"] == "run_as"
        assert manifest["exit_status"] == "ok"

        err_dir = tmp_path / "err"
        with pytest.raises(Exception):
            runner.run_as(987654, telemetry_dir=err_dir)
        assert load_manifest(err_dir)["exit_status"] == "error"
        assert summarize_telemetry(err_dir).totals.get("as_failed") == 1


class KillsWorkerAlways(CampaignRunner):
    """SIGKILLs the worker at AS#27's probe stage, on every dispatch.

    Dying *after* the probe heartbeat makes the supervisor's post-mortem
    deterministic: the buffered heartbeats are drained before the corpse
    is judged, so the outcome always attributes the probe stage.
    """

    def run_as(self, as_id, telemetry_dir=None):
        self._victim_active = as_id == 27
        return super().run_as(as_id, telemetry_dir)

    def _set_stage(self, stage):
        super()._set_stage(stage)
        if stage == "probe" and getattr(self, "_victim_active", False):
            os.kill(os.getpid(), signal.SIGKILL)


@_fork_required
class TestQuarantinePostMortem:
    def test_stage_attribution_flows_to_every_surface(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        ckpt = tmp_path / "campaign.ckpt"
        report = KillsWorkerAlways(**KNOBS).run_portfolio(
            as_ids=AS_IDS,
            checkpoint=ckpt,
            jobs=2,
            timeout_per_as=60,
            telemetry_dir=telemetry_dir,
        )
        quarantine = report.quarantined[27]
        assert quarantine.last_stage == "probe"
        assert "probe" in quarantine.stage_seconds
        assert all(s >= 0 for s in quarantine.stage_seconds.values())

        # report JSON carries the post-mortem
        entry = report.as_dict()["quarantined"]["27"]
        assert entry["last_stage"] == quarantine.last_stage

        # markdown names the stage
        text = render_markdown_report(report)
        assert "## Execution incidents" in text
        assert f"last stage: {quarantine.last_stage}" in text

        # telemetry counted the containment events
        totals = summarize_telemetry(telemetry_dir).totals
        assert totals.get("as_quarantined") == 1
        assert totals.get("worker_redispatches") == 1

        # and the banked stub restores it on resume
        resumed = KillsWorkerAlways(**KNOBS).run_portfolio(
            as_ids=AS_IDS, checkpoint=ckpt, resume=True
        )
        restored = resumed.quarantined[27]
        assert restored.last_stage == quarantine.last_stage
        # the checkpoint stores stage timings rounded to milliseconds
        assert restored.stage_seconds == pytest.approx(
            quarantine.stage_seconds, abs=5e-4
        )


def _assert_unified_trace(telemetry_dir, expect_scopes=()):
    """The tentpole invariant: one trace, nested, anchored, coherent."""
    timeline = load_timeline(telemetry_dir)
    manifest = load_manifest(telemetry_dir)
    assert manifest["trace_id"]
    assert timeline.trace_ids == {manifest["trace_id"]}
    root = timeline.root()
    assert root is not None and root.stage == "portfolio"
    by_id = {span.span_id: span for span in timeline.spans}
    for parent_id, kids in timeline.children.items():
        parent = by_id[parent_id]
        for child in kids:
            assert parent.start <= child.start <= child.end <= parent.end
    scopes = {span.scope for span in timeline.spans}
    for scope in expect_scopes:
        assert scope in scopes
    segments = critical_path(timeline)
    covered = sum(s.exclusive_seconds for s in segments)
    assert covered == pytest.approx(root.seconds)
    return timeline


class TestTracePropagation:
    def test_serial_run_produces_one_unified_trace(self, tmp_path):
        _, _, telemetry_dir = _run(tmp_path, "run", telemetry=True)
        timeline = _assert_unified_trace(
            telemetry_dir, expect_scopes=[*AS_IDS, "portfolio"]
        )
        # the AS worker spans hang directly off the campaign root
        root = timeline.root()
        as_spans = [
            s for s in timeline.children[root.span_id] if s.stage == "as"
        ]
        assert {s.scope for s in as_spans} == set(AS_IDS)

    @_fork_required
    def test_worker_process_spans_join_the_campaign_trace(self, tmp_path):
        _, _, telemetry_dir = _run(
            tmp_path, "run", jobs=2, telemetry=True
        )
        _assert_unified_trace(
            telemetry_dir, expect_scopes=[*AS_IDS, "portfolio"]
        )

    def test_resumed_run_records_its_own_unified_trace(self, tmp_path):
        _, ckpt, fresh_dir = _run(tmp_path, "fresh", telemetry=True)
        resumed_dir = tmp_path / "resumed-telemetry"
        CampaignRunner(**KNOBS).run_portfolio(
            as_ids=AS_IDS,
            checkpoint=ckpt,
            resume=True,
            telemetry_dir=resumed_dir,
        )
        fresh = _assert_unified_trace(fresh_dir)
        resumed = _assert_unified_trace(
            resumed_dir, expect_scopes=[*AS_IDS, "portfolio"]
        )
        # two runs are two traces
        assert fresh.trace_ids != resumed.trace_ids

    @_fork_required
    def test_killed_worker_leaves_a_coherent_trace(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        KillsWorkerAlways(**KNOBS).run_portfolio(
            as_ids=AS_IDS,
            checkpoint=tmp_path / "c.ckpt",
            jobs=2,
            timeout_per_as=60,
            telemetry_dir=telemetry_dir,
        )
        # the survivor's spans and the post-mortem all carry the one
        # campaign trace id; reconstruction stays structurally sound
        timeline = _assert_unified_trace(
            telemetry_dir, expect_scopes=[46, "portfolio"]
        )
        report = timeline_report_dict(timeline)
        assert report["trace_ids"] == sorted(timeline.trace_ids)
        json.dumps(trace_event_json(timeline))  # export stays valid


def _scale(tmp_path, name, jobs=1, shards=None, telemetry=False,
           resume=False, n_ases=2):
    campaign = ScaleCampaign(
        portfolio=SyntheticPortfolio(n_ases, seed=5),
        seed=5,
        vps_per_as=2,
        targets_per_as=4,
    )
    report = campaign.run(
        tmp_path / name,
        jobs=jobs,
        vps_per_shard=shards,
        resume=resume,
        telemetry_dir=(tmp_path / f"{name}-telemetry") if telemetry else None,
    )
    return report, tmp_path / name, tmp_path / f"{name}-telemetry"


class TestScaleCampaignTracing:
    def test_tracing_never_touches_report_or_checkpoint_bytes(
        self, tmp_path
    ):
        plain, plain_dir, _ = _scale(tmp_path, "plain")
        traced, traced_dir, _ = _scale(
            tmp_path, "traced", jobs=2, shards=1, telemetry=True
        )
        assert _fingerprint(traced) == _fingerprint(plain)
        assert (traced_dir / "checkpoint.jsonl").read_bytes() == (
            plain_dir / "checkpoint.jsonl"
        ).read_bytes()

    def test_shard_and_analysis_spans_unify_under_one_trace(
        self, tmp_path
    ):
        _, _, telemetry_dir = _scale(
            tmp_path, "run", jobs=2, shards=1, telemetry=True
        )
        timeline = _assert_unified_trace(telemetry_dir)
        scopes = {str(span.scope) for span in timeline.spans}
        # probe shards and analysis scopes both joined the trace
        assert any(scope.startswith("shard:") for scope in scopes)
        assert {"1", "2"} <= scopes
        report = timeline_report_dict(timeline)
        assert report["critical_path_share"] > 0.5
        summary = summarize_telemetry(telemetry_dir)
        # per-trace latency histograms for the hot stages made it out
        for stage in ("probe", "sanitize", "detect", "bank"):
            assert summary.histograms[stage]["count"] > 0

    def test_resumed_scale_run_stays_byte_identical(self, tmp_path):
        plain, plain_dir, _ = _scale(tmp_path, "plain")
        # interrupt by probing only: run against a subset, then resume
        # the full campaign with tracing on
        campaign = ScaleCampaign(
            portfolio=SyntheticPortfolio(2, seed=5),
            seed=5,
            vps_per_as=2,
            targets_per_as=4,
        )
        out = tmp_path / "resumed"
        campaign.run(out, as_ids=[1], telemetry_dir=tmp_path / "t1")
        report = campaign.run(
            out,
            jobs=2,
            resume=True,
            telemetry_dir=tmp_path / "t2",
        )
        assert _fingerprint(report) == _fingerprint(plain)
        assert (out / "checkpoint.jsonl").read_bytes() == (
            plain_dir / "checkpoint.jsonl"
        ).read_bytes()
        _assert_unified_trace(tmp_path / "t2")


class TestQuarantineStubCompat:
    def test_roundtrip_with_stage_post_mortem(self):
        stub = QuarantineStub(
            reason="timeout",
            attempts=2,
            detail="exceeded 60s deadline",
            last_stage="probe",
            stage_seconds={"setup": 0.5, "probe": 59.5},
        )
        restored = QuarantineStub.from_dict(stub.as_dict())
        assert restored.last_stage == "probe"
        assert restored.stage_seconds == {"setup": 0.5, "probe": 59.5}

    def test_reads_pre_observability_records(self):
        # checkpoints banked before this field existed must still load
        stub = QuarantineStub.from_dict(
            {"reason": "crash", "attempts": 2, "detail": "killed"}
        )
        assert stub.last_stage is None
        assert stub.stage_seconds == {}
